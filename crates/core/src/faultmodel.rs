//! Fault duration models: transient single-event upsets versus stuck-at
//! faults.
//!
//! The paper injects *transient* single-bit flips; the hardware study it
//! compares against (Constantinescu's ASCI Red experiments, §8.1)
//! injected *stuck-at-0/1* faults at the IC pin level and found that
//! "transients proved more difficult to detect, whereas longer faults led
//! to application failures". This module adds the stuck-at model so that
//! comparison can be reproduced: a stuck-at fault re-asserts its bit
//! value periodically for the rest of the run, so the program cannot
//! simply overwrite it and move on.

use crate::outcome::{classify, Manifestation};
use crate::target::{regular_registers, FaultDictionary, TargetClass};
use fl_apps::{App, Golden};
use fl_machine::Region;
use fl_mpi::{MpiWorld, PendingInjection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How long an injected fault lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// A single-event upset: the bit is flipped once (the paper's model).
    Transient,
    /// The bit is flipped once and the corrupted value is *held* for the
    /// rest of the run — a long-duration fault. Strictly at least as
    /// severe as the same transient, since overwrites cannot clear it.
    Held,
    /// The bit is forced to 0 and held there (§8.1's pin-level hardware
    /// model; a no-op when the bit was already 0).
    StuckAt0,
    /// The bit is forced to 1 and held there.
    StuckAt1,
    /// Process-level fault: the whole rank dies at a drawn block clock
    /// (fl-ft's `RankKill`). Not a bit-duration model — it is injected
    /// and recovered through the `ft` campaign paths, so it is excluded
    /// from [`FaultModel::ALL`].
    KillRank,
    /// Process-level fault: the rank stays resident but goes silent
    /// (`RankKill` with `wedge`). Excluded from [`FaultModel::ALL`] like
    /// [`FaultModel::KillRank`].
    WedgeRank,
}

impl FaultModel {
    /// All *bit-duration* models, transient first. The process-level
    /// models ([`FaultModel::KillRank`], [`FaultModel::WedgeRank`]) are
    /// deliberately not listed: model-comparison campaigns sweep this
    /// array and rank kills are run through the ft coverage paths.
    pub const ALL: [FaultModel; 4] = [
        FaultModel::Transient,
        FaultModel::Held,
        FaultModel::StuckAt0,
        FaultModel::StuckAt1,
    ];

    /// Display label — also the canonical parse name, see
    /// [`std::str::FromStr`].
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Transient => "transient",
            FaultModel::Held => "held-flip",
            FaultModel::StuckAt0 => "stuck-at-0",
            FaultModel::StuckAt1 => "stuck-at-1",
            FaultModel::KillRank => "kill-rank",
            FaultModel::WedgeRank => "wedge-rank",
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    /// Accepts the labels plus the alias `held` for `held-flip`.
    fn from_str(s: &str) -> Result<FaultModel, String> {
        Ok(match s {
            "transient" => FaultModel::Transient,
            "held-flip" | "held" => FaultModel::Held,
            "stuck-at-0" => FaultModel::StuckAt0,
            "stuck-at-1" => FaultModel::StuckAt1,
            "kill-rank" => FaultModel::KillRank,
            "wedge-rank" => FaultModel::WedgeRank,
            other => return Err(format!("unknown fault model `{other}`")),
        })
    }
}

/// Re-assertion period for stuck-at faults, in instructions. Small enough
/// that the program cannot make meaningful progress between assertions.
const REASSERT_PERIOD: u64 = 500;

/// Read one bit of a 32-bit-class register (helper for the held model).
fn reg_bit(m: &fl_machine::Machine, reg: fl_isa::RegisterName, bit: u32) -> bool {
    use fl_isa::RegisterName;
    match reg {
        RegisterName::Gpr(g) => m.cpu.get(g) >> (bit & 31) & 1 == 1,
        RegisterName::Eip => m.cpu.eip >> (bit & 31) & 1 == 1,
        RegisterName::Eflags => m.cpu.eflags >> (bit & 31) & 1 == 1,
        _ => unreachable!("held model targets regular registers only"),
    }
}

/// Run one trial under a duration model against a register or a static
/// memory region. Returns the §5.1 manifestation.
pub fn run_model_trial(
    app: &App,
    golden: &Golden,
    class: TargetClass,
    model: FaultModel,
    trial_seed: u64,
    budget: u64,
) -> Manifestation {
    assert!(
        !matches!(model, FaultModel::KillRank | FaultModel::WedgeRank),
        "process-level models are injected through the ft campaign paths"
    );
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let rank = rng.gen_range(0..app.params.nranks);
    let at_insns = rng.gen_range(1..golden.insns[rank as usize].max(2));
    let mut cfg = app.world_config(budget);
    cfg.seed = trial_seed;
    let mut world = MpiWorld::new(&app.image, cfg);

    let injection = match class {
        TargetClass::RegularReg => {
            let regs = regular_registers();
            let reg = regs[rng.gen_range(0..regs.len())];
            let bit = rng.gen_range(0..reg.width_bits());
            match model {
                FaultModel::Transient => PendingInjection::once(rank, at_insns, move |m| {
                    m.flip_register_bit(reg, bit);
                }),
                FaultModel::Held => {
                    // First assertion flips and remembers the corrupted
                    // value; later ones re-force it.
                    let mut forced: Option<bool> = None;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        match forced {
                            None => {
                                m.flip_register_bit(reg, bit);
                                // Read back what we forced.
                                let v = reg_bit(m, reg, bit);
                                forced = Some(v);
                            }
                            Some(v) => m.set_register_bit(reg, bit, v),
                        }
                    })
                }
                FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
                    let v = model == FaultModel::StuckAt1;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        m.set_register_bit(reg, bit, v);
                    })
                }
                FaultModel::KillRank | FaultModel::WedgeRank => unreachable!(),
            }
        }
        TargetClass::Text | TargetClass::Data | TargetClass::Bss => {
            let region = class.region().expect("static class");
            let dict = FaultDictionary::build(&app.image, region);
            let addr = dict.pick(&mut rng).expect("region has symbols");
            let bit = rng.gen_range(0..8u8);
            match model {
                FaultModel::Transient => PendingInjection::once(rank, at_insns, move |m| {
                    m.flip_mem_bit(addr, bit);
                }),
                FaultModel::Held => {
                    let mut forced: Option<bool> = None;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        match forced {
                            None => {
                                m.flip_mem_bit(addr, bit);
                                forced = Some(m.mem.peek_u8(addr) >> (bit & 7) & 1 == 1);
                            }
                            Some(v) => {
                                m.set_mem_bit(addr, bit, v);
                            }
                        }
                    })
                }
                FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
                    let v = model == FaultModel::StuckAt1;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        m.set_mem_bit(addr, bit, v);
                    })
                }
                FaultModel::KillRank | FaultModel::WedgeRank => unreachable!(),
            }
        }
        other => panic!("run_model_trial does not support {other:?}"),
    };
    world.set_injection(injection);
    let exit = world.run();
    let output = app.comparable_output(&world);
    classify(&exit, &output, &golden.output)
}

/// Error-rate comparison of duration models over one target class.
pub fn compare_models(
    app: &App,
    class: TargetClass,
    trials: u32,
    seed: u64,
) -> Vec<(FaultModel, f64, u32)> {
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    FaultModel::ALL
        .iter()
        .map(|&model| {
            let mut errors = 0;
            for k in 0..trials {
                let m = run_model_trial(
                    app,
                    &golden,
                    class,
                    model,
                    seed.wrapping_add(k as u64),
                    budget,
                );
                if m.is_error() {
                    errors += 1;
                }
            }
            (model, 100.0 * errors as f64 / trials.max(1) as f64, errors)
        })
        .collect()
}

/// A memory region eligible for `run_model_trial`.
pub fn model_classes() -> [TargetClass; 4] {
    [
        TargetClass::RegularReg,
        TargetClass::Text,
        TargetClass::Data,
        TargetClass::Bss,
    ]
}

/// Sanity helper used by tests: the region of a class.
pub fn static_region(class: TargetClass) -> Option<Region> {
    class.region()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{AppKind, AppParams};

    #[test]
    fn held_faults_are_at_least_as_severe_as_transients() {
        // §8.1's qualitative finding: long-duration faults manifest more
        // (they cannot be overwritten away). The held model applies the
        // exact same flips as the transient model, then keeps them.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let rows = compare_models(&app, TargetClass::RegularReg, 30, 0x517C);
        let rate = |m: FaultModel| rows.iter().find(|(x, _, _)| *x == m).unwrap().1;
        let transient = rate(FaultModel::Transient);
        let held = rate(FaultModel::Held);
        assert!(
            held + 7.0 >= transient,
            "held ({held:.0}%) must not be materially below transient ({transient:.0}%)"
        );
    }

    #[test]
    fn stuck_at_register_bit_stays_forced() {
        // Force a low EAX bit to 1 persistently; the machine still reaches
        // a defined exit and the injection re-arms (covered by the world's
        // period handling).
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let golden = app.golden(2_000_000_000);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let m = run_model_trial(
            &app,
            &golden,
            TargetClass::RegularReg,
            FaultModel::StuckAt1,
            7,
            budget,
        );
        // Any §5.1 class is acceptable; the point is a defined outcome.
        let _ = m;
    }

    #[test]
    fn model_labels() {
        assert_eq!(FaultModel::Transient.label(), "transient");
        assert_eq!(FaultModel::Held.label(), "held-flip");
        assert_eq!(FaultModel::StuckAt0.label(), "stuck-at-0");
        assert_eq!(FaultModel::KillRank.label(), "kill-rank");
        assert_eq!(FaultModel::WedgeRank.label(), "wedge-rank");
        assert_eq!("kill-rank".parse::<FaultModel>(), Ok(FaultModel::KillRank));
        // Process-level models are not part of the bit-duration sweep.
        assert_eq!(FaultModel::ALL.len(), 4);
        assert!(!FaultModel::ALL.contains(&FaultModel::KillRank));
    }
}
