//! Fault duration models: transient single-event upsets versus stuck-at
//! faults.
//!
//! The paper injects *transient* single-bit flips; the hardware study it
//! compares against (Constantinescu's ASCI Red experiments, §8.1)
//! injected *stuck-at-0/1* faults at the IC pin level and found that
//! "transients proved more difficult to detect, whereas longer faults led
//! to application failures". This module adds the stuck-at model so that
//! comparison can be reproduced: a stuck-at fault re-asserts its bit
//! value periodically for the rest of the run, so the program cannot
//! simply overwrite it and move on.

use crate::outcome::{classify, Manifestation};
use crate::target::{regular_registers, FaultDictionary, TargetClass};
use fl_apps::{App, Golden};
use fl_machine::Region;
use fl_mpi::{MpiWorld, PendingInjection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How long an injected fault lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// A single-event upset: the bit is flipped once (the paper's model).
    Transient,
    /// The bit is flipped once and the corrupted value is *held* for the
    /// rest of the run — a long-duration fault. Strictly at least as
    /// severe as the same transient, since overwrites cannot clear it.
    Held,
    /// The bit is forced to 0 and held there (§8.1's pin-level hardware
    /// model; a no-op when the bit was already 0).
    StuckAt0,
    /// The bit is forced to 1 and held there.
    StuckAt1,
    /// Process-level fault: the whole rank dies at a drawn block clock
    /// (fl-ft's `RankKill`). Not a bit-duration model — it is injected
    /// and recovered through the `ft` campaign paths, so it is excluded
    /// from [`FaultModel::ALL`].
    KillRank,
    /// Process-level fault: the rank stays resident but goes silent
    /// (`RankKill` with `wedge`). Excluded from [`FaultModel::ALL`] like
    /// [`FaultModel::KillRank`].
    WedgeRank,
    /// Network fault: one drawn in-flight message is silently dropped at
    /// the channel layer (fl-chaos).
    NetDrop,
    /// Network fault: one drawn message is delivered twice.
    NetDuplicate,
    /// Network fault: one drawn message is delayed a bounded number of
    /// rounds before delivery (reordering past later traffic).
    NetReorder,
    /// Network fault: one payload byte of a drawn message is corrupted
    /// in flight — the class the channel CRC provably covers.
    NetCorrupt,
    /// Network fault: a rank-set partition severs all channels between
    /// two groups for a window of rounds.
    Partition,
    /// System fault: a drawn `malloc` call returns NULL, exercising the
    /// application's allocation error path.
    SyscallMalloc,
    /// System fault: a drawn write/print I/O call returns an error.
    SyscallWrite,
    /// Correlated fault: one MTBF-style arrival process kills several
    /// ranks within a burst window (each on its own block clock).
    Burst,
    /// Correlated fault: a whole rank group (a "node") dies at once —
    /// FINJ's node-level model.
    NodeKill,
    /// Performance-interference fault (fl-perturb): a multiplicative tax
    /// on one rank's scheduling quantum over a block-clock window — the
    /// rank computes correctly but is starved of CPU time.
    QuantumTax,
    /// Performance-interference fault (fl-perturb): a co-scheduled hog
    /// steals a share of every round's quantum from a whole node group.
    HogRank,
    /// Performance-interference fault (fl-perturb): every retired
    /// load/store in a window pays a latency surcharge in retired-insn
    /// accounting — contended memory bandwidth.
    MemStall,
}

impl FaultModel {
    /// All *bit-duration* models, transient first. The process-level
    /// models ([`FaultModel::KillRank`], [`FaultModel::WedgeRank`]) are
    /// deliberately not listed: model-comparison campaigns sweep this
    /// array and rank kills are run through the ft coverage paths. The
    /// chaos models live in their own registries below — sweep code must
    /// use those instead of hand-listing variants.
    pub const ALL: [FaultModel; 4] = [
        FaultModel::Transient,
        FaultModel::Held,
        FaultModel::StuckAt0,
        FaultModel::StuckAt1,
    ];

    /// The process-level models the ft campaign paths inject.
    pub const fn process_models() -> [FaultModel; 2] {
        [FaultModel::KillRank, FaultModel::WedgeRank]
    }

    /// The channel-layer network fault models (fl-chaos).
    pub const fn network_models() -> [FaultModel; 5] {
        [
            FaultModel::NetDrop,
            FaultModel::NetDuplicate,
            FaultModel::NetReorder,
            FaultModel::NetCorrupt,
            FaultModel::Partition,
        ]
    }

    /// The syscall failure-injection models (fl-chaos).
    pub const fn system_models() -> [FaultModel; 2] {
        [FaultModel::SyscallMalloc, FaultModel::SyscallWrite]
    }

    /// The correlated / multi-rank models (fl-chaos).
    pub const fn correlated_models() -> [FaultModel; 2] {
        [FaultModel::Burst, FaultModel::NodeKill]
    }

    /// The performance-interference models the `perturb` campaign sweeps
    /// (fl-perturb): faults that degrade timing, never state.
    pub const fn perturb_models() -> [FaultModel; 3] {
        [
            FaultModel::QuantumTax,
            FaultModel::HogRank,
            FaultModel::MemStall,
        ]
    }

    /// Every model the `chaos` campaign sweeps: network, then system,
    /// then correlated.
    pub fn chaos_models() -> [FaultModel; 9] {
        let mut out = [FaultModel::Transient; 9];
        let mut i = 0;
        for m in Self::network_models()
            .into_iter()
            .chain(Self::system_models())
            .chain(Self::correlated_models())
        {
            out[i] = m;
            i += 1;
        }
        assert_eq!(i, 9);
        out
    }

    /// Every variant there is: bit-duration, process-level, chaos, then
    /// perturb. The single source of truth for parsers, round-trip tests
    /// and did-you-mean suggestions.
    pub fn all_models() -> [FaultModel; 18] {
        let mut out = [FaultModel::Transient; 18];
        let mut i = 0;
        for m in Self::ALL
            .into_iter()
            .chain(Self::process_models())
            .chain(Self::chaos_models())
            .chain(Self::perturb_models())
        {
            out[i] = m;
            i += 1;
        }
        assert_eq!(i, 18);
        out
    }

    /// The chaos target class a chaos model injects through, or `None`
    /// for the bit-duration and single-rank process models.
    pub fn chaos_class(self) -> Option<TargetClass> {
        match self {
            FaultModel::NetDrop
            | FaultModel::NetDuplicate
            | FaultModel::NetReorder
            | FaultModel::NetCorrupt
            | FaultModel::Partition => Some(TargetClass::Network),
            FaultModel::SyscallMalloc | FaultModel::SyscallWrite => Some(TargetClass::Syscall),
            FaultModel::Burst | FaultModel::NodeKill => Some(TargetClass::Process),
            FaultModel::QuantumTax | FaultModel::HogRank | FaultModel::MemStall => {
                Some(TargetClass::Sched)
            }
            FaultModel::Transient
            | FaultModel::Held
            | FaultModel::StuckAt0
            | FaultModel::StuckAt1
            | FaultModel::KillRank
            | FaultModel::WedgeRank => None,
        }
    }

    /// Display label — also the canonical parse name, see
    /// [`std::str::FromStr`].
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Transient => "transient",
            FaultModel::Held => "held-flip",
            FaultModel::StuckAt0 => "stuck-at-0",
            FaultModel::StuckAt1 => "stuck-at-1",
            FaultModel::KillRank => "kill-rank",
            FaultModel::WedgeRank => "wedge-rank",
            FaultModel::NetDrop => "net-drop",
            FaultModel::NetDuplicate => "net-dup",
            FaultModel::NetReorder => "net-reorder",
            FaultModel::NetCorrupt => "net-corrupt",
            FaultModel::Partition => "partition",
            FaultModel::SyscallMalloc => "syscall-malloc",
            FaultModel::SyscallWrite => "syscall-write",
            FaultModel::Burst => "burst-kill",
            FaultModel::NodeKill => "node-kill",
            FaultModel::QuantumTax => "quantum-tax",
            FaultModel::HogRank => "hog-rank",
            FaultModel::MemStall => "mem-stall",
        }
    }

    /// Every parseable label, used for did-you-mean suggestions.
    pub const LABELS: [&'static str; 18] = [
        "transient",
        "held-flip",
        "stuck-at-0",
        "stuck-at-1",
        "kill-rank",
        "wedge-rank",
        "net-drop",
        "net-dup",
        "net-reorder",
        "net-corrupt",
        "partition",
        "syscall-malloc",
        "syscall-write",
        "burst-kill",
        "node-kill",
        "quantum-tax",
        "hog-rank",
        "mem-stall",
    ];
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    /// Accepts the labels plus the aliases `held` (`held-flip`),
    /// `net-duplicate` (`net-dup`) and `burst` (`burst-kill`). Unknown
    /// names get a nearest-match suggestion.
    fn from_str(s: &str) -> Result<FaultModel, String> {
        Ok(match s {
            "transient" => FaultModel::Transient,
            "held-flip" | "held" => FaultModel::Held,
            "stuck-at-0" => FaultModel::StuckAt0,
            "stuck-at-1" => FaultModel::StuckAt1,
            "kill-rank" => FaultModel::KillRank,
            "wedge-rank" => FaultModel::WedgeRank,
            "net-drop" => FaultModel::NetDrop,
            "net-dup" | "net-duplicate" => FaultModel::NetDuplicate,
            "net-reorder" => FaultModel::NetReorder,
            "net-corrupt" => FaultModel::NetCorrupt,
            "partition" => FaultModel::Partition,
            "syscall-malloc" => FaultModel::SyscallMalloc,
            "syscall-write" => FaultModel::SyscallWrite,
            "burst-kill" | "burst" => FaultModel::Burst,
            "node-kill" => FaultModel::NodeKill,
            "quantum-tax" => FaultModel::QuantumTax,
            "hog-rank" | "hog" => FaultModel::HogRank,
            "mem-stall" => FaultModel::MemStall,
            other => {
                return Err(crate::suggest::unknown(
                    "fault model",
                    other,
                    &FaultModel::LABELS,
                ))
            }
        })
    }
}

/// Re-assertion period for stuck-at faults, in instructions. Small enough
/// that the program cannot make meaningful progress between assertions.
const REASSERT_PERIOD: u64 = 500;

/// Read one bit of a 32-bit-class register (helper for the held model).
fn reg_bit(m: &fl_machine::Machine, reg: fl_isa::RegisterName, bit: u32) -> bool {
    use fl_isa::RegisterName;
    match reg {
        RegisterName::Gpr(g) => m.cpu.get(g) >> (bit & 31) & 1 == 1,
        RegisterName::Eip => m.cpu.eip >> (bit & 31) & 1 == 1,
        RegisterName::Eflags => m.cpu.eflags >> (bit & 31) & 1 == 1,
        _ => unreachable!("held model targets regular registers only"),
    }
}

/// Run one trial under a duration model against a register or a static
/// memory region. Returns the §5.1 manifestation.
pub fn run_model_trial(
    app: &App,
    golden: &Golden,
    class: TargetClass,
    model: FaultModel,
    trial_seed: u64,
    budget: u64,
) -> Manifestation {
    assert!(
        FaultModel::ALL.contains(&model),
        "only bit-duration models run here: process models go through the \
         ft campaign paths, chaos models through the chaos engine"
    );
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let rank = rng.gen_range(0..app.params.nranks);
    let at_insns = rng.gen_range(1..golden.insns[rank as usize].max(2));
    let mut cfg = app.world_config(budget);
    cfg.seed = trial_seed;
    let mut world = MpiWorld::new(&app.image, cfg);

    let injection = match class {
        TargetClass::RegularReg => {
            let regs = regular_registers();
            let reg = regs[rng.gen_range(0..regs.len())];
            let bit = rng.gen_range(0..reg.width_bits());
            match model {
                FaultModel::Transient => PendingInjection::once(rank, at_insns, move |m| {
                    m.flip_register_bit(reg, bit);
                }),
                FaultModel::Held => {
                    // First assertion flips and remembers the corrupted
                    // value; later ones re-force it.
                    let mut forced: Option<bool> = None;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        match forced {
                            None => {
                                m.flip_register_bit(reg, bit);
                                // Read back what we forced.
                                let v = reg_bit(m, reg, bit);
                                forced = Some(v);
                            }
                            Some(v) => m.set_register_bit(reg, bit, v),
                        }
                    })
                }
                FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
                    let v = model == FaultModel::StuckAt1;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        m.set_register_bit(reg, bit, v);
                    })
                }
                FaultModel::KillRank
                | FaultModel::WedgeRank
                | FaultModel::NetDrop
                | FaultModel::NetDuplicate
                | FaultModel::NetReorder
                | FaultModel::NetCorrupt
                | FaultModel::Partition
                | FaultModel::SyscallMalloc
                | FaultModel::SyscallWrite
                | FaultModel::Burst
                | FaultModel::NodeKill
                | FaultModel::QuantumTax
                | FaultModel::HogRank
                | FaultModel::MemStall => unreachable!(),
            }
        }
        TargetClass::Text | TargetClass::Data | TargetClass::Bss => {
            let region = class.region().expect("static class");
            let dict = FaultDictionary::build(&app.image, region);
            let addr = dict.pick(&mut rng).expect("region has symbols");
            let bit = rng.gen_range(0..8u8);
            match model {
                FaultModel::Transient => PendingInjection::once(rank, at_insns, move |m| {
                    m.flip_mem_bit(addr, bit);
                }),
                FaultModel::Held => {
                    let mut forced: Option<bool> = None;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        match forced {
                            None => {
                                m.flip_mem_bit(addr, bit);
                                forced = Some(m.mem.peek_u8(addr) >> (bit & 7) & 1 == 1);
                            }
                            Some(v) => {
                                m.set_mem_bit(addr, bit, v);
                            }
                        }
                    })
                }
                FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
                    let v = model == FaultModel::StuckAt1;
                    PendingInjection::persistent(rank, at_insns, REASSERT_PERIOD, move |m| {
                        m.set_mem_bit(addr, bit, v);
                    })
                }
                FaultModel::KillRank
                | FaultModel::WedgeRank
                | FaultModel::NetDrop
                | FaultModel::NetDuplicate
                | FaultModel::NetReorder
                | FaultModel::NetCorrupt
                | FaultModel::Partition
                | FaultModel::SyscallMalloc
                | FaultModel::SyscallWrite
                | FaultModel::Burst
                | FaultModel::NodeKill
                | FaultModel::QuantumTax
                | FaultModel::HogRank
                | FaultModel::MemStall => unreachable!(),
            }
        }
        other => panic!("run_model_trial does not support {other:?}"),
    };
    world.set_injection(injection);
    let exit = world.run();
    let output = app.comparable_output(&world);
    classify(&exit, &output, &golden.output)
}

/// Error-rate comparison of duration models over one target class.
pub fn compare_models(
    app: &App,
    class: TargetClass,
    trials: u32,
    seed: u64,
) -> Vec<(FaultModel, f64, u32)> {
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    FaultModel::ALL
        .iter()
        .map(|&model| {
            let mut errors = 0;
            for k in 0..trials {
                let m = run_model_trial(
                    app,
                    &golden,
                    class,
                    model,
                    seed.wrapping_add(k as u64),
                    budget,
                );
                if m.is_error() {
                    errors += 1;
                }
            }
            (model, 100.0 * errors as f64 / trials.max(1) as f64, errors)
        })
        .collect()
}

/// A memory region eligible for `run_model_trial`.
pub fn model_classes() -> [TargetClass; 4] {
    [
        TargetClass::RegularReg,
        TargetClass::Text,
        TargetClass::Data,
        TargetClass::Bss,
    ]
}

/// Sanity helper used by tests: the region of a class.
pub fn static_region(class: TargetClass) -> Option<Region> {
    class.region()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{AppKind, AppParams};

    #[test]
    fn held_faults_are_at_least_as_severe_as_transients() {
        // §8.1's qualitative finding: long-duration faults manifest more
        // (they cannot be overwritten away). The held model applies the
        // exact same flips as the transient model, then keeps them.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let rows = compare_models(&app, TargetClass::RegularReg, 30, 0x517C);
        let rate = |m: FaultModel| rows.iter().find(|(x, _, _)| *x == m).unwrap().1;
        let transient = rate(FaultModel::Transient);
        let held = rate(FaultModel::Held);
        assert!(
            held + 7.0 >= transient,
            "held ({held:.0}%) must not be materially below transient ({transient:.0}%)"
        );
    }

    #[test]
    fn stuck_at_register_bit_stays_forced() {
        // Force a low EAX bit to 1 persistently; the machine still reaches
        // a defined exit and the injection re-arms (covered by the world's
        // period handling).
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let golden = app.golden(2_000_000_000);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let m = run_model_trial(
            &app,
            &golden,
            TargetClass::RegularReg,
            FaultModel::StuckAt1,
            7,
            budget,
        );
        // Any §5.1 class is acceptable; the point is a defined outcome.
        let _ = m;
    }

    #[test]
    fn model_labels() {
        assert_eq!(FaultModel::Transient.label(), "transient");
        assert_eq!(FaultModel::Held.label(), "held-flip");
        assert_eq!(FaultModel::StuckAt0.label(), "stuck-at-0");
        assert_eq!(FaultModel::KillRank.label(), "kill-rank");
        assert_eq!(FaultModel::WedgeRank.label(), "wedge-rank");
        assert_eq!("kill-rank".parse::<FaultModel>(), Ok(FaultModel::KillRank));
        // Process-level models are not part of the bit-duration sweep.
        assert_eq!(FaultModel::ALL.len(), 4);
        assert!(!FaultModel::ALL.contains(&FaultModel::KillRank));
    }

    #[test]
    fn every_model_round_trips_through_parse_and_display() {
        for m in FaultModel::all_models() {
            let shown = m.to_string();
            assert_eq!(shown.parse::<FaultModel>(), Ok(m), "round-trip {shown}");
        }
        // LABELS is exactly the set of canonical labels, in registry order.
        let labels: Vec<&str> = FaultModel::all_models().iter().map(|m| m.label()).collect();
        assert_eq!(labels, FaultModel::LABELS);
    }

    #[test]
    fn registries_partition_the_model_space() {
        let all = FaultModel::all_models();
        assert_eq!(all.len(), 18);
        // No duplicates across registries.
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a), "{a} listed twice");
        }
        // Chaos models map to chaos classes; the rest map to none.
        for m in FaultModel::chaos_models() {
            assert!(m.chaos_class().is_some(), "{m} needs a chaos class");
        }
        for m in FaultModel::perturb_models() {
            assert_eq!(m.chaos_class(), Some(crate::target::TargetClass::Sched));
        }
        for m in FaultModel::ALL
            .into_iter()
            .chain(FaultModel::process_models())
        {
            assert_eq!(m.chaos_class(), None);
        }
    }

    #[test]
    fn unknown_model_names_get_a_suggestion() {
        let err = "net-crrupt".parse::<FaultModel>().unwrap_err();
        assert_eq!(
            err,
            "unknown fault model `net-crrupt` (did you mean `net-corrupt`?)"
        );
        let err = "burst-".parse::<FaultModel>().unwrap_err();
        assert!(err.contains("did you mean `burst-kill`?"), "{err}");
    }
}
