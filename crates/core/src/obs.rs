//! Trial-level and campaign-level aggregation of `fl-obs` event
//! streams, plus the JSONL/TSV sinks.
//!
//! The machine and MPI layers record *what happened*; this module turns
//! those per-rank ring buffers into the telemetry the FINJ-style
//! observability direction asks for:
//!
//! * [`TrialTrace`] — one trial's record plus its per-rank event
//!   streams and merged timeline (`faultlab events`);
//! * [`TrialMetrics`] — derived per-trial numbers: when the fault
//!   landed, when the first symptom appeared, the latency between them
//!   in blocks, and a per-kind event histogram;
//! * [`ClassMetrics`] / [`CampaignMetrics`] — per-region aggregates
//!   folded trial-by-trial so memory stays bounded no matter how many
//!   injections the campaign runs (`faultlab metrics`).
//!
//! All serialization is hand-rolled line-oriented text, in the same
//! style as the `report` module's tables: JSONL for machine consumers,
//! TSV for spreadsheets.

use crate::campaign::TrialRecord;
use crate::outcome::Manifestation;
use crate::target::TargetClass;
use fl_apps::AppKind;
use fl_machine::ExecStats;
use fl_obs::{merge_ranks, Event, EventKind, EventLog};
use std::fmt::Write as _;

/// Number of event kinds (histogram width).
pub const KIND_COUNT: usize = EventKind::NAMES.len();

/// Log₂ buckets for the time-to-manifestation histogram: bucket 0 is
/// latency 0, bucket i ≥ 1 covers [2^(i-1), 2^i) blocks, the last
/// bucket absorbs everything larger.
pub const TTM_BUCKETS: usize = 24;

/// One trial's full telemetry: the outcome record plus the event
/// streams every rank retained.
#[derive(Debug, Clone)]
pub struct TrialTrace {
    /// What was injected and what happened.
    pub record: TrialRecord,
    /// The rank the fault targeted.
    pub rank: u16,
    /// Guest instructions retired across all ranks by trial end.
    pub insns: u64,
    /// Retained events per rank (index = rank), oldest first.
    pub streams: Vec<Vec<Event>>,
}

impl TrialTrace {
    /// The merged global timeline, ordered by (clock, rank, seq).
    pub fn timeline(&self) -> Vec<(u16, Event)> {
        merge_ranks(&self.streams)
    }

    /// Serialize the merged timeline as JSONL, one event per line.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (rank, e) in self.timeline() {
            out.push_str(&EventLog::jsonl_line(rank, &e));
            out.push('\n');
        }
        out
    }

    /// Derive the per-trial metrics from the streams.
    pub fn metrics(&self) -> TrialMetrics {
        trial_metrics(&self.record, self.rank, &self.streams, self.insns)
    }
}

/// Derived per-trial numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialMetrics {
    /// The trial's outcome.
    pub outcome: Manifestation,
    /// Block clock (on the victim rank) at which the injection landed:
    /// the `fault_fired` / `msg_fault_hit` event. `None` when the fault
    /// never fired (e.g. a message offset the run never reached) or
    /// recording was off.
    pub injection_clock: Option<u64>,
    /// Block clock of the first symptom event (`signal` or `mpi_error`,
    /// on any rank) — absent for silent outcomes (correct, incorrect
    /// output, hang).
    pub first_symptom_clock: Option<u64>,
    /// Time to manifestation in blocks: symptom clock − injection
    /// clock. Symptoms on a non-victim rank use that rank's own block
    /// clock, so cross-rank latencies are consistent interleaving time,
    /// not a true global order.
    pub blocks_to_manifestation: Option<u64>,
    /// Events recorded (across all ranks) between the injection and the
    /// first symptom, exclusive of both endpoints.
    pub events_to_symptom: Option<u64>,
    /// Total events retained across all ranks.
    pub events_total: u64,
    /// Guest instructions retired across all ranks by trial end.
    pub insns: u64,
    /// Retained events per kind, indexed like [`EventKind::NAMES`].
    pub kind_counts: [u64; KIND_COUNT],
}

/// Whether an event is a symptom: the moment some layer *noticed* —
/// including the guard's channel CRC and progress watchdog.
fn is_symptom(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::SignalRaised { .. }
            | EventKind::MpiError { .. }
            | EventKind::CrcReject { .. }
            | EventKind::WatchdogTrip { .. }
    )
}

/// Whether an event marks the injection landing.
fn is_injection(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::FaultFired { .. } | EventKind::MessageFaultHit { .. }
    )
}

/// Compute [`TrialMetrics`] from a trial's record, event streams, and
/// retired-instruction total.
pub fn trial_metrics(
    record: &TrialRecord,
    rank: u16,
    streams: &[Vec<Event>],
    insns: u64,
) -> TrialMetrics {
    let mut kind_counts = [0u64; KIND_COUNT];
    let mut events_total = 0u64;
    for s in streams {
        for e in s {
            kind_counts[e.kind.index()] += 1;
            events_total += 1;
        }
    }
    let injection_clock = streams
        .get(rank as usize)
        .and_then(|s| s.iter().find(|e| is_injection(e.kind)))
        .map(|e| e.clock);
    // The golden prefix is symptom-free, so the first symptom anywhere
    // is attributable to the injection.
    let first_symptom_clock = streams
        .iter()
        .flatten()
        .filter(|e| is_symptom(e.kind))
        .map(|e| e.clock)
        .min();
    let blocks_to_manifestation = match (injection_clock, first_symptom_clock) {
        (Some(i), Some(s)) => Some(s.saturating_sub(i)),
        _ => None,
    };
    let events_to_symptom = match (injection_clock, first_symptom_clock) {
        (Some(i), Some(s)) => Some(
            streams
                .iter()
                .flatten()
                .filter(|e| e.clock > i && e.clock < s && !is_symptom(e.kind))
                .count() as u64,
        ),
        _ => None,
    };
    TrialMetrics {
        outcome: record.outcome,
        injection_clock,
        first_symptom_clock,
        blocks_to_manifestation,
        events_to_symptom,
        events_total,
        insns,
        kind_counts,
    }
}

/// Aggregated metrics for one target class, folded trial-by-trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMetrics {
    /// The injected class.
    pub class: TargetClass,
    /// Trials folded in.
    pub trials: u32,
    /// Trials whose injection observably landed.
    pub landed: u32,
    /// Trials with a symptom event (crash/MPI-detected style).
    pub symptomatic: u32,
    /// Sum of retained events over all trials.
    pub events_total: u64,
    /// Sum of guest instructions retired over all trials.
    pub insns_total: u64,
    /// Per-kind event totals, indexed like [`EventKind::NAMES`].
    pub kind_counts: [u64; KIND_COUNT],
    /// Log₂ histogram of blocks-to-manifestation (see [`TTM_BUCKETS`]).
    pub ttm_log2: [u32; TTM_BUCKETS],
    /// Sum of blocks-to-manifestation over symptomatic trials.
    pub ttm_sum: u64,
    /// Sum of events-between-injection-and-symptom.
    pub events_to_symptom_sum: u64,
    /// Sum of measured slowdown over correct-output trials, in permille
    /// of the fault-free reference (fl-perturb campaigns; 0 elsewhere).
    pub slowdown_permille_sum: u64,
    /// Trials contributing to [`ClassMetrics::slowdown_permille_sum`].
    pub slowdown_trials: u32,
    /// Trials that missed their deadline outright — hung or exhausted
    /// their budget (fl-perturb campaigns; 0 elsewhere).
    pub deadline_misses: u32,
}

impl ClassMetrics {
    /// An empty accumulator for `class`.
    pub fn new(class: TargetClass) -> ClassMetrics {
        ClassMetrics {
            class,
            trials: 0,
            landed: 0,
            symptomatic: 0,
            events_total: 0,
            insns_total: 0,
            kind_counts: [0; KIND_COUNT],
            ttm_log2: [0; TTM_BUCKETS],
            ttm_sum: 0,
            events_to_symptom_sum: 0,
            slowdown_permille_sum: 0,
            slowdown_trials: 0,
            deadline_misses: 0,
        }
    }

    /// Fold one correct-output trial's measured slowdown in (fl-perturb).
    pub fn fold_slowdown(&mut self, permille: u64) {
        self.slowdown_permille_sum += permille;
        self.slowdown_trials += 1;
    }

    /// Mean slowdown factor over contributing trials (1.0 = clean pace;
    /// 0.0 with no contributing trials).
    pub fn mean_slowdown_x(&self) -> f64 {
        if self.slowdown_trials == 0 {
            0.0
        } else {
            self.slowdown_permille_sum as f64 / (1000.0 * self.slowdown_trials as f64)
        }
    }

    /// Fold one trial's metrics in.
    pub fn fold(&mut self, m: &TrialMetrics) {
        self.trials += 1;
        if m.injection_clock.is_some() {
            self.landed += 1;
        }
        self.events_total += m.events_total;
        self.insns_total += m.insns;
        for (acc, n) in self.kind_counts.iter_mut().zip(m.kind_counts) {
            *acc += n;
        }
        if let Some(ttm) = m.blocks_to_manifestation {
            self.symptomatic += 1;
            self.ttm_sum += ttm;
            self.ttm_log2[ttm_bucket(ttm)] += 1;
        }
        if let Some(n) = m.events_to_symptom {
            self.events_to_symptom_sum += n;
        }
    }

    /// Mean blocks-to-manifestation over symptomatic trials.
    pub fn mean_ttm(&self) -> f64 {
        if self.symptomatic == 0 {
            0.0
        } else {
            self.ttm_sum as f64 / self.symptomatic as f64
        }
    }
}

/// The log₂ bucket index for a latency value.
pub fn ttm_bucket(ttm: u64) -> usize {
    if ttm == 0 {
        0
    } else {
        (64 - ttm.leading_zeros() as usize).min(TTM_BUCKETS - 1)
    }
}

/// A whole campaign's event metrics: one [`ClassMetrics`] per requested
/// class, in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignMetrics {
    /// Per-class aggregates.
    pub classes: Vec<ClassMetrics>,
}

impl CampaignMetrics {
    /// The metrics row for a class, if present.
    pub fn class(&self, c: TargetClass) -> Option<&ClassMetrics> {
        self.classes.iter().find(|m| m.class == c)
    }

    /// Serialize as JSONL: one object per class.
    pub fn to_jsonl(&self, app: AppKind) -> String {
        let mut out = String::new();
        for m in &self.classes {
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"class\":\"{}\",\"trials\":{},\"landed\":{},\"symptomatic\":{},\"events_total\":{},\"insns_total\":{},\"mean_ttm_blocks\":{:.1},\"events_to_symptom\":{}",
                app.name(),
                m.class.name(),
                m.trials,
                m.landed,
                m.symptomatic,
                m.events_total,
                m.insns_total,
                m.mean_ttm(),
                m.events_to_symptom_sum,
            );
            let _ = write!(
                out,
                ",\"slowdown_mean_x\":{:.3},\"slowdown_trials\":{},\"deadline_misses\":{}",
                m.mean_slowdown_x(),
                m.slowdown_trials,
                m.deadline_misses,
            );
            out.push_str(",\"events\":{");
            for (i, name) in EventKind::NAMES.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{}", m.kind_counts[i]);
            }
            out.push_str("},\"ttm_log2\":[");
            for (i, n) in m.ttm_log2.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Serialize as TSV: a header row, then one row per class.
    pub fn to_tsv(&self, app: AppKind) -> String {
        let mut out = String::from("app\tclass\ttrials\tlanded\tsymptomatic\tevents_total\tinsns_total\tmean_ttm_blocks\tevents_to_symptom\tslowdown_mean_x\tslowdown_trials\tdeadline_misses");
        for name in EventKind::NAMES {
            let _ = write!(out, "\t{name}");
        }
        out.push('\n');
        for m in &self.classes {
            let _ = write!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}\t{}",
                app.name(),
                m.class.name(),
                m.trials,
                m.landed,
                m.symptomatic,
                m.events_total,
                m.insns_total,
                m.mean_ttm(),
                m.events_to_symptom_sum,
            );
            let _ = write!(
                out,
                "\t{:.3}\t{}\t{}",
                m.mean_slowdown_x(),
                m.slowdown_trials,
                m.deadline_misses,
            );
            for n in m.kind_counts {
                let _ = write!(out, "\t{n}");
            }
            out.push('\n');
        }
        out
    }
}

/// Exec-cache telemetry as one trailing TSV row (a `#`-prefixed header
/// plus a `#`-prefixed value row, so per-class data rows parse
/// unchanged). Telemetry is campaign-wide and execution-path-dependent —
/// it never enters the per-class rows, which stay byte-identical across
/// the trace, block, and slow paths.
pub fn exec_cache_tsv(app: AppKind, s: &ExecStats) -> String {
    format!(
        "# exec_cache\tapp\tblock_hits\tblock_misses\ttrace_hits\ttrace_side_exits\tdemotions\n\
         # exec_cache\t{}\t{}\t{}\t{}\t{}\t{}\n",
        app.name(),
        s.block_hits,
        s.block_misses,
        s.trace_hits,
        s.trace_side_exits,
        s.demotions,
    )
}

/// Exec-cache telemetry as one trailing JSONL object, tagged with a
/// `"telemetry"` discriminator so class-row consumers can skip it.
pub fn exec_cache_jsonl(app: AppKind, s: &ExecStats) -> String {
    format!(
        "{{\"telemetry\":\"exec_cache\",\"app\":\"{}\",\"block_hits\":{},\"block_misses\":{},\"trace_hits\":{},\"trace_side_exits\":{},\"demotions\":{}}}\n",
        app.name(),
        s.block_hits,
        s.block_misses,
        s.trace_hits,
        s.trace_side_exits,
        s.demotions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_obs::SigKind;

    fn ev(seq: u64, clock: u64, kind: EventKind) -> Event {
        Event { seq, clock, kind }
    }

    fn record() -> TrialRecord {
        TrialRecord {
            class: TargetClass::RegularReg,
            detail: "rank 0 t=10: eax bit 3".into(),
            outcome: Manifestation::Crash,
        }
    }

    #[test]
    fn metrics_measure_injection_to_symptom_latency() {
        let streams = vec![
            vec![
                ev(
                    0,
                    5,
                    EventKind::MsgSend {
                        to: 1,
                        tag: 0,
                        bytes: 8,
                    },
                ),
                ev(1, 10, EventKind::FaultFired { at_insns: 1000 }),
                ev(
                    2,
                    12,
                    EventKind::MallocCall {
                        size: 64,
                        ptr: 4096,
                    },
                ),
                ev(
                    3,
                    20,
                    EventKind::SignalRaised {
                        signal: SigKind::Segv,
                        addr: 0x1234,
                    },
                ),
            ],
            vec![ev(0, 11, EventKind::SyscallTrap { num: 40 })],
        ];
        let m = trial_metrics(&record(), 0, &streams, 12_345);
        assert_eq!(m.injection_clock, Some(10));
        assert_eq!(m.first_symptom_clock, Some(20));
        assert_eq!(m.blocks_to_manifestation, Some(10));
        // Between clock 10 and 20, exclusive: the malloc (12) and the
        // other rank's syscall (11).
        assert_eq!(m.events_to_symptom, Some(2));
        assert_eq!(m.events_total, 5);
        assert_eq!(m.insns, 12_345);
        assert_eq!(
            m.kind_counts[EventKind::FaultFired { at_insns: 0 }.index()],
            1
        );
    }

    #[test]
    fn fault_that_never_lands_yields_no_latency() {
        let streams = vec![vec![ev(0, 3, EventKind::SyscallTrap { num: 40 })]];
        let m = trial_metrics(&record(), 0, &streams, 100);
        assert_eq!(m.injection_clock, None);
        assert_eq!(m.blocks_to_manifestation, None);
        assert_eq!(m.events_total, 1);
    }

    #[test]
    fn ttm_buckets_are_log2() {
        assert_eq!(ttm_bucket(0), 0);
        assert_eq!(ttm_bucket(1), 1);
        assert_eq!(ttm_bucket(2), 2);
        assert_eq!(ttm_bucket(3), 2);
        assert_eq!(ttm_bucket(4), 3);
        assert_eq!(ttm_bucket(u64::MAX), TTM_BUCKETS - 1);
    }

    #[test]
    fn class_metrics_fold_and_serialize() {
        let streams = vec![vec![
            ev(0, 10, EventKind::FaultFired { at_insns: 50 }),
            ev(
                1,
                14,
                EventKind::SignalRaised {
                    signal: SigKind::Ill,
                    addr: 0,
                },
            ),
        ]];
        let tm = trial_metrics(&record(), 0, &streams, 500);
        let mut cm = ClassMetrics::new(TargetClass::RegularReg);
        cm.fold(&tm);
        cm.fold(&tm);
        assert_eq!(cm.trials, 2);
        assert_eq!(cm.landed, 2);
        assert_eq!(cm.symptomatic, 2);
        assert_eq!(cm.insns_total, 1000);
        assert!((cm.mean_ttm() - 4.0).abs() < 1e-9);

        let all = CampaignMetrics { classes: vec![cm] };
        let jsonl = all.to_jsonl(AppKind::Wavetoy);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"class\":\"regular-reg\""));
        assert!(jsonl.contains("\"insns_total\":1000"));
        assert!(jsonl.contains("\"signal\":2"));
        let tsv = all.to_tsv(AppKind::Wavetoy);
        assert_eq!(tsv.lines().count(), 2);
        assert!(tsv.starts_with("app\tclass\t"));
        assert!(tsv.contains("\tinsns_total\t"));
    }
}
