//! Result rendering: the [`Report`] trait unifying every result
//! family's output formats, plus the §6.1.1 register analysis.
//!
//! Each campaign family — plain injection ([`CampaignResult`]),
//! guard coverage ([`crate::guarded::CoverageResult`]), fault tolerance
//! ([`crate::ft::FtResult`]) and event metrics ([`MetricsReport`]) —
//! implements [`Report`], so every CLI verb renders through the same
//! three formats (`table`/`tsv`/`jsonl`) and a new mode gets all three
//! for free.
//!
//! [`render_table`] reproduces the layout of the paper's Tables 2–4: one
//! row per injected region with the error rate and the breakdown of
//! manifestations as percentages *of manifested errors*. Applications
//! without internal checks (Wavetoy) simply show empty App/MPI-Detected
//! columns, as Table 2 does.

use crate::campaign::{CampaignResult, ClassResult};
use crate::ft::{ft_jsonl, render_ft, render_ft_tsv, FtResult};
use crate::guarded::{coverage_jsonl, render_coverage, render_coverage_tsv, CoverageResult};
use crate::json::escape;
use crate::obs::CampaignMetrics;
use crate::outcome::Manifestation;
use crate::target::TargetClass;
use fl_apps::AppKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which of the three output formats a consumer asked for — the CLI's
/// `--tsv`/`--jsonl` flag pair, as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable table (the default).
    Table,
    /// Tab-separated values for downstream plotting.
    Tsv,
    /// One JSON object per line.
    Jsonl,
}

impl ReportFormat {
    /// Resolve a verb's `--tsv`/`--jsonl` flags (JSONL wins when both
    /// are given, matching the verbs' historical precedence).
    pub fn from_flags(tsv: bool, jsonl: bool) -> ReportFormat {
        if jsonl {
            ReportFormat::Jsonl
        } else if tsv {
            ReportFormat::Tsv
        } else {
            ReportFormat::Table
        }
    }
}

/// One result family's full set of output formats.
///
/// `title` is only consulted by [`Report::table`]; the machine formats
/// identify the campaign in their own fields.
pub trait Report {
    /// Human-readable table.
    fn table(&self, title: &str) -> String;
    /// Tab-separated values, header row first.
    fn tsv(&self) -> String;
    /// One JSON object per line.
    fn jsonl(&self) -> String;

    /// Dispatch on a [`ReportFormat`].
    fn render(&self, format: ReportFormat, title: &str) -> String {
        match format {
            ReportFormat::Table => self.table(title),
            ReportFormat::Tsv => self.tsv(),
            ReportFormat::Jsonl => self.jsonl(),
        }
    }
}

impl Report for CampaignResult {
    fn table(&self, title: &str) -> String {
        render_table(self, title)
    }

    fn tsv(&self) -> String {
        render_tsv(self)
    }

    /// One line per trial with its campaign coordinates. The engine's
    /// live record stream ([`crate::record_line`]) is a superset of
    /// this view — it adds per-trial instruction counts and
    /// observability fields only the running engine knows.
    fn jsonl(&self) -> String {
        let mut out = String::new();
        for (ci, c) in self.classes.iter().enumerate() {
            for (k, t) in c.trials.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{{\"app\":\"{}\",\"class\":\"{}\",\"ci\":{ci},\"k\":{k},\"detail\":\"{}\",\"outcome\":\"{}\"}}",
                    self.app.name(),
                    t.class.name(),
                    escape(&t.detail),
                    t.outcome.slug(),
                );
            }
        }
        out
    }
}

impl Report for CoverageResult {
    fn table(&self, title: &str) -> String {
        render_coverage(self, title)
    }

    fn tsv(&self) -> String {
        render_coverage_tsv(self)
    }

    fn jsonl(&self) -> String {
        coverage_jsonl(self)
    }
}

impl Report for FtResult {
    fn table(&self, title: &str) -> String {
        render_ft(self, title)
    }

    fn tsv(&self) -> String {
        render_ft_tsv(self)
    }

    fn jsonl(&self) -> String {
        ft_jsonl(self)
    }
}

/// [`CampaignMetrics`] paired with the app it measured — the metrics
/// serializers need the app name on every row, and the metrics struct
/// itself does not carry it.
#[derive(Debug, Clone, Copy)]
pub struct MetricsReport<'a> {
    /// Which application the campaign injected into.
    pub app: AppKind,
    /// The event-stream aggregates.
    pub metrics: &'a CampaignMetrics,
    /// Exec-cache telemetry for the campaign, appended as a trailing
    /// TSV/JSONL row when present. `None` leaves the rendering exactly
    /// as before (model campaigns have no exec caches).
    pub exec: Option<&'a fl_machine::ExecStats>,
}

impl Report for MetricsReport<'_> {
    fn table(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>7} {:>12} {:>11} {:>13} {:>9}",
            "Region", "Trials", "Landed", "Symptomatic", "Events", "Insns", "MeanTTM"
        );
        let _ = writeln!(out, "{}", "-".repeat(79));
        for m in &self.metrics.classes {
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>7} {:>12} {:>11} {:>13} {:>9.1}",
                m.class.label(),
                m.trials,
                m.landed,
                m.symptomatic,
                m.events_total,
                m.insns_total,
                m.mean_ttm(),
            );
        }
        out
    }

    fn tsv(&self) -> String {
        let mut out = self.metrics.to_tsv(self.app);
        if let Some(s) = self.exec {
            out.push_str(&crate::obs::exec_cache_tsv(self.app, s));
        }
        out
    }

    fn jsonl(&self) -> String {
        let mut out = self.metrics.to_jsonl(self.app);
        if let Some(s) = self.exec {
            out.push_str(&crate::obs::exec_cache_jsonl(self.app, s));
        }
        out
    }
}

fn pct(v: f64) -> String {
    if v == 0.0 {
        String::new()
    } else {
        format!("{v:.1}")
    }
}

/// Render a campaign as a paper-style table (Tables 2–4).
pub fn render_table(r: &CampaignResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>9} | {:>7} {:>6} {:>9} {:>8} {:>8}",
        "Region", "Executions", "Errors(%)", "Crash", "Hang", "Incorrect", "AppDet", "MpiDet"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for c in &r.classes {
        let t = &c.tally;
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>9.1} | {:>7} {:>6} {:>9} {:>8} {:>8}",
            c.class.label(),
            t.executions,
            t.error_rate_percent(),
            pct(t.manifestation_percent(Manifestation::Crash)),
            pct(t.manifestation_percent(Manifestation::Hang)),
            pct(t.manifestation_percent(Manifestation::Incorrect)),
            pct(t.manifestation_percent(Manifestation::AppDetected)),
            pct(t.manifestation_percent(Manifestation::MpiDetected)),
        );
    }
    out
}

/// Render a table as tab-separated values (for downstream plotting).
pub fn render_tsv(r: &CampaignResult) -> String {
    let mut out = String::from(
        "region\texecutions\terror_rate\tcrash\thang\tincorrect\tapp_detected\tmpi_detected\n",
    );
    for c in &r.classes {
        let t = &c.tally;
        let _ = writeln!(
            out,
            "{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            c.class.label(),
            t.executions,
            t.error_rate_percent(),
            t.manifestation_percent(Manifestation::Crash),
            t.manifestation_percent(Manifestation::Hang),
            t.manifestation_percent(Manifestation::Incorrect),
            t.manifestation_percent(Manifestation::AppDetected),
            t.manifestation_percent(Manifestation::MpiDetected),
        );
    }
    out
}

/// Per-register error rates extracted from a register-class result —
/// the §6.1.1 analysis ("ESP/EBP are live in every cycle; most x87
/// special registers are inert").
pub fn register_breakdown(c: &ClassResult) -> BTreeMap<String, (u32, u32)> {
    assert!(matches!(
        c.class,
        TargetClass::RegularReg | TargetClass::FpReg
    ));
    let mut map: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    for t in &c.trials {
        // detail format: "rank R t=N: <reg> bit B"
        let reg = t
            .detail
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(" bit").next())
            .unwrap_or("?")
            .to_string();
        let e = map.entry(reg).or_insert((0, 0));
        e.0 += 1;
        if t.outcome.is_error() {
            e.1 += 1;
        }
    }
    map
}

/// Render the register breakdown as text.
pub fn render_register_breakdown(c: &ClassResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>7} {:>8}",
        "Register", "Trials", "Errors", "Rate(%)"
    );
    for (reg, (n, e)) in register_breakdown(c) {
        let rate = if n > 0 {
            100.0 * e as f64 / n as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "{reg:<8} {n:>6} {e:>7} {rate:>8.1}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign_impl, CampaignConfig};
    use fl_apps::{App, AppKind, AppParams};

    fn small_result() -> CampaignResult {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        run_campaign_impl(
            &app,
            &[TargetClass::RegularReg, TargetClass::Data],
            &CampaignConfig {
                injections: 10,
                seed: 3,
                threads: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn table_renders_all_rows() {
        let r = small_result();
        let table = render_table(&r, "Table 2: Fault Injection Results (Wavetoy)");
        assert!(table.contains("Regular Reg."));
        assert!(table.contains("Data"));
        assert!(table.contains("Executions"));
        assert!(table.lines().count() >= 5);
    }

    #[test]
    fn tsv_is_machine_readable() {
        let r = small_result();
        let tsv = render_tsv(&r);
        let mut lines = tsv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split('\t').count(), 8);
        for line in lines {
            assert_eq!(line.split('\t').count(), 8, "{line}");
        }
    }

    #[test]
    fn report_trait_unifies_the_formats() {
        let r = small_result();
        assert_eq!(r.table("t"), render_table(&r, "t"));
        assert_eq!(r.tsv(), render_tsv(&r));
        let jsonl = r.jsonl();
        assert_eq!(jsonl.lines().count() as u64, r.trials_total());
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with("{\"app\":\"wavetoy\"") && l.ends_with('}')));
        assert_eq!(r.render(ReportFormat::Table, "t"), r.table("t"));
        assert_eq!(r.render(ReportFormat::Tsv, ""), r.tsv());
        assert_eq!(r.render(ReportFormat::Jsonl, ""), r.jsonl());
    }

    #[test]
    fn report_format_resolves_flag_pairs() {
        assert_eq!(ReportFormat::from_flags(false, false), ReportFormat::Table);
        assert_eq!(ReportFormat::from_flags(true, false), ReportFormat::Tsv);
        assert_eq!(ReportFormat::from_flags(false, true), ReportFormat::Jsonl);
        assert_eq!(ReportFormat::from_flags(true, true), ReportFormat::Jsonl);
    }

    #[test]
    fn metrics_report_renders_all_formats() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let r = crate::CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(4)
            .seed(3)
            .observe(256)
            .run();
        let metrics = r.metrics.as_ref().unwrap();
        let view = MetricsReport {
            app: r.app,
            metrics,
            exec: None,
        };
        let table = view.table("metrics demo");
        assert!(table.contains("Regular Reg."));
        assert!(table.contains("MeanTTM"));
        assert_eq!(view.tsv(), metrics.to_tsv(r.app));
        assert_eq!(view.jsonl(), metrics.to_jsonl(r.app));

        // With telemetry attached, the per-class rows stay untouched and
        // the exec-cache counters land as a trailing row/object.
        let telem = MetricsReport {
            app: r.app,
            metrics,
            exec: Some(&r.exec_stats),
        };
        assert!(telem.tsv().starts_with(&metrics.to_tsv(r.app)));
        assert!(telem.tsv().contains("# exec_cache"));
        assert!(telem.jsonl().starts_with(&metrics.to_jsonl(r.app)));
        assert!(telem.jsonl().contains("\"telemetry\":\"exec_cache\""));
        assert!(telem.jsonl().contains("\"block_hits\":"));
    }

    #[test]
    fn register_breakdown_parses_details() {
        let r = small_result();
        let c = r.class(TargetClass::RegularReg).unwrap();
        let map = register_breakdown(c);
        let total: u32 = map.values().map(|&(n, _)| n).sum();
        assert_eq!(total, 10);
        // Register names must be recognisable.
        for reg in map.keys() {
            assert!(
                reg == "eip"
                    || reg == "eflags"
                    || ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
                        .contains(&reg.as_str()),
                "unexpected register {reg}"
            );
        }
        let rendered = render_register_breakdown(c);
        assert!(rendered.contains("Register"));
    }
}
