//! Result-table rendering and the §6.1.1 register analysis.
//!
//! [`render_table`] reproduces the layout of the paper's Tables 2–4: one
//! row per injected region with the error rate and the breakdown of
//! manifestations as percentages *of manifested errors*. Applications
//! without internal checks (Wavetoy) simply show empty App/MPI-Detected
//! columns, as Table 2 does.

use crate::campaign::{CampaignResult, ClassResult};
use crate::outcome::Manifestation;
use crate::target::TargetClass;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn pct(v: f64) -> String {
    if v == 0.0 {
        String::new()
    } else {
        format!("{v:.1}")
    }
}

/// Render a campaign as a paper-style table (Tables 2–4).
pub fn render_table(r: &CampaignResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>9} | {:>7} {:>6} {:>9} {:>8} {:>8}",
        "Region", "Executions", "Errors(%)", "Crash", "Hang", "Incorrect", "AppDet", "MpiDet"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for c in &r.classes {
        let t = &c.tally;
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>9.1} | {:>7} {:>6} {:>9} {:>8} {:>8}",
            c.class.label(),
            t.executions,
            t.error_rate_percent(),
            pct(t.manifestation_percent(Manifestation::Crash)),
            pct(t.manifestation_percent(Manifestation::Hang)),
            pct(t.manifestation_percent(Manifestation::Incorrect)),
            pct(t.manifestation_percent(Manifestation::AppDetected)),
            pct(t.manifestation_percent(Manifestation::MpiDetected)),
        );
    }
    out
}

/// Render a table as tab-separated values (for downstream plotting).
pub fn render_tsv(r: &CampaignResult) -> String {
    let mut out = String::from(
        "region\texecutions\terror_rate\tcrash\thang\tincorrect\tapp_detected\tmpi_detected\n",
    );
    for c in &r.classes {
        let t = &c.tally;
        let _ = writeln!(
            out,
            "{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            c.class.label(),
            t.executions,
            t.error_rate_percent(),
            t.manifestation_percent(Manifestation::Crash),
            t.manifestation_percent(Manifestation::Hang),
            t.manifestation_percent(Manifestation::Incorrect),
            t.manifestation_percent(Manifestation::AppDetected),
            t.manifestation_percent(Manifestation::MpiDetected),
        );
    }
    out
}

/// Per-register error rates extracted from a register-class result —
/// the §6.1.1 analysis ("ESP/EBP are live in every cycle; most x87
/// special registers are inert").
pub fn register_breakdown(c: &ClassResult) -> BTreeMap<String, (u32, u32)> {
    assert!(matches!(
        c.class,
        TargetClass::RegularReg | TargetClass::FpReg
    ));
    let mut map: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    for t in &c.trials {
        // detail format: "rank R t=N: <reg> bit B"
        let reg = t
            .detail
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(" bit").next())
            .unwrap_or("?")
            .to_string();
        let e = map.entry(reg).or_insert((0, 0));
        e.0 += 1;
        if t.outcome.is_error() {
            e.1 += 1;
        }
    }
    map
}

/// Render the register breakdown as text.
pub fn render_register_breakdown(c: &ClassResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>7} {:>8}",
        "Register", "Trials", "Errors", "Rate(%)"
    );
    for (reg, (n, e)) in register_breakdown(c) {
        let rate = if n > 0 {
            100.0 * e as f64 / n as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "{reg:<8} {n:>6} {e:>7} {rate:>8.1}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign_impl, CampaignConfig};
    use fl_apps::{App, AppKind, AppParams};

    fn small_result() -> CampaignResult {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        run_campaign_impl(
            &app,
            &[TargetClass::RegularReg, TargetClass::Data],
            &CampaignConfig {
                injections: 10,
                seed: 3,
                threads: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn table_renders_all_rows() {
        let r = small_result();
        let table = render_table(&r, "Table 2: Fault Injection Results (Wavetoy)");
        assert!(table.contains("Regular Reg."));
        assert!(table.contains("Data"));
        assert!(table.contains("Executions"));
        assert!(table.lines().count() >= 5);
    }

    #[test]
    fn tsv_is_machine_readable() {
        let r = small_result();
        let tsv = render_tsv(&r);
        let mut lines = tsv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split('\t').count(), 8);
        for line in lines {
            assert_eq!(line.split('\t').count(), 8, "{line}");
        }
    }

    #[test]
    fn register_breakdown_parses_details() {
        let r = small_result();
        let c = r.class(TargetClass::RegularReg).unwrap();
        let map = register_breakdown(c);
        let total: u32 = map.values().map(|&(n, _)| n).sum();
        assert_eq!(total, 10);
        // Register names must be recognisable.
        for reg in map.keys() {
            assert!(
                reg == "eip"
                    || reg == "eflags"
                    || ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
                        .contains(&reg.as_str()),
                "unexpected register {reg}"
            );
        }
        let rendered = render_register_breakdown(c);
        assert!(rendered.contains("Register"));
    }
}
