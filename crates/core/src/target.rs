//! Fault-target selection — the §3.2 region-targeting techniques.
//!
//! The paper confines injection to the application's context and uses a
//! different technique per region:
//!
//! * **Text / Data / BSS** — static: a *fault dictionary* of addresses
//!   drawn from the `objdump`/`nm` symbol lists, with any symbol that
//!   also appears in the MPI library's list removed.
//! * **Heap** — dynamic: scan malloc chunks and pick one whose in-memory
//!   8-byte header identifies it as a *user* allocation (§3.2's wrapped
//!   allocator). The scan reads the identifiers from simulated memory, so
//!   a previously corrupted header genuinely misleads it.
//! * **Stack** — dynamic: walk the EBP frame chain and inject only into
//!   frames whose return address lies in application text.
//! * **Registers** — the "regular" class (general-purpose + EIP +
//!   EFLAGS) and the FP class (eight 80-bit data registers + the seven
//!   special registers), per §6.1.1.
//!
//! Dynamic targets are resolved *at fire time* inside the injection
//! closure, exactly as the paper's injector resolved them when its
//! periodic wakeup fired.

use fl_isa::{FpuSpecial, Gpr, RegisterName};
use fl_machine::{Machine, ProgramImage, Region, MAGIC_USER};
use rand::Rng;

/// The eight injection-target classes of Tables 2–4, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// General-purpose registers, EIP and EFLAGS.
    RegularReg,
    /// x87 data registers (80-bit) and special registers.
    FpReg,
    /// Zero-initialised globals.
    Bss,
    /// Initialised globals.
    Data,
    /// Application stack frames.
    Stack,
    /// Application machine code.
    Text,
    /// User-tagged malloc chunks.
    Heap,
    /// MPI message payloads/headers at the channel level.
    Message,
    /// In-flight network faults (drop/duplicate/reorder/corrupt) and
    /// rank-set partitions in the channel layer (fl-chaos).
    Network,
    /// Syscall failure injection — malloc/write calls made to return
    /// errors at a drawn clock (fl-chaos).
    Syscall,
    /// Process-level faults: rank kills, correlated bursts and node
    /// kills (fl-ft / fl-chaos).
    Process,
    /// Scheduling/CPU-time interference — quantum taxes, co-scheduled
    /// hogs and memory stalls (fl-perturb).
    Sched,
}

impl TargetClass {
    /// All eight classes in the order the paper's tables list them.
    ///
    /// Deliberately excludes the fl-chaos classes ([`Network`],
    /// [`Syscall`], [`Process`]) so the paper's per-region sweeps and
    /// tables keep their original shape; chaos campaigns name their
    /// classes explicitly.
    ///
    /// [`Network`]: TargetClass::Network
    /// [`Syscall`]: TargetClass::Syscall
    /// [`Process`]: TargetClass::Process
    pub const ALL: [TargetClass; 8] = [
        TargetClass::RegularReg,
        TargetClass::FpReg,
        TargetClass::Bss,
        TargetClass::Data,
        TargetClass::Stack,
        TargetClass::Text,
        TargetClass::Heap,
        TargetClass::Message,
    ];

    /// Row label used in the result tables.
    pub fn label(self) -> &'static str {
        match self {
            TargetClass::RegularReg => "Regular Reg.",
            TargetClass::FpReg => "FP Reg.",
            TargetClass::Bss => "BSS",
            TargetClass::Data => "Data",
            TargetClass::Stack => "Stack",
            TargetClass::Text => "Text",
            TargetClass::Heap => "Heap",
            TargetClass::Message => "Message",
            TargetClass::Network => "Network",
            TargetClass::Syscall => "Syscall",
            TargetClass::Process => "Process",
            TargetClass::Sched => "Sched",
        }
    }

    /// The memory region for the three static memory classes.
    pub fn region(self) -> Option<Region> {
        match self {
            TargetClass::Bss => Some(Region::Bss),
            TargetClass::Data => Some(Region::Data),
            TargetClass::Text => Some(Region::Text),
            TargetClass::RegularReg
            | TargetClass::FpReg
            | TargetClass::Stack
            | TargetClass::Heap
            | TargetClass::Message
            | TargetClass::Network
            | TargetClass::Syscall
            | TargetClass::Process
            | TargetClass::Sched => None,
        }
    }

    /// Canonical machine-readable name — the single source of truth for
    /// CLI arguments, config files and JSONL/TSV output. Round-trips
    /// through [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            TargetClass::RegularReg => "regular-reg",
            TargetClass::FpReg => "fp-reg",
            TargetClass::Bss => "bss",
            TargetClass::Data => "data",
            TargetClass::Stack => "stack",
            TargetClass::Text => "text",
            TargetClass::Heap => "heap",
            TargetClass::Message => "message",
            TargetClass::Network => "network",
            TargetClass::Syscall => "syscall",
            TargetClass::Process => "process",
            TargetClass::Sched => "sched",
        }
    }

    /// Every parseable class name (canonical names of [`ALL`] plus the
    /// chaos classes), used for did-you-mean suggestions.
    ///
    /// [`ALL`]: TargetClass::ALL
    pub const NAMES: [&'static str; 12] = [
        "regular-reg",
        "fp-reg",
        "bss",
        "data",
        "stack",
        "text",
        "heap",
        "message",
        "network",
        "syscall",
        "process",
        "sched",
    ];
}

impl std::fmt::Display for TargetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TargetClass {
    type Err = String;

    /// Accepts the canonical names plus the short aliases `reg`, `fp`
    /// and `msg`.
    fn from_str(s: &str) -> Result<TargetClass, String> {
        Ok(match s {
            "regular-reg" | "reg" => TargetClass::RegularReg,
            "fp-reg" | "fp" => TargetClass::FpReg,
            "bss" => TargetClass::Bss,
            "data" => TargetClass::Data,
            "stack" => TargetClass::Stack,
            "text" => TargetClass::Text,
            "heap" => TargetClass::Heap,
            "message" | "msg" => TargetClass::Message,
            "network" | "net" => TargetClass::Network,
            "syscall" | "sys" => TargetClass::Syscall,
            "process" | "proc" => TargetClass::Process,
            "sched" => TargetClass::Sched,
            other => {
                return Err(crate::suggest::unknown(
                    "region",
                    other,
                    &TargetClass::NAMES,
                ))
            }
        })
    }
}

/// The "regular" register targets: the sixteen 32-bit registers of §4.3
/// (eight GPRs, EIP, EFLAGS — the paper's count also includes segment
/// registers we do not model; the bit axis is what matters).
pub fn regular_registers() -> Vec<RegisterName> {
    let mut v: Vec<RegisterName> = Gpr::ALL.iter().map(|&g| RegisterName::Gpr(g)).collect();
    v.push(RegisterName::Eip);
    v.push(RegisterName::Eflags);
    v
}

/// The FP register targets: eight 80-bit data registers plus the seven
/// special-purpose registers (CWD/SWD/TWD/FIP/FCS/FOO/FOS).
pub fn fp_registers() -> Vec<RegisterName> {
    let mut v: Vec<RegisterName> = (0..8).map(RegisterName::St).collect();
    v.extend(FpuSpecial::ALL.iter().map(|&s| RegisterName::FpuSpecial(s)));
    v
}

/// A fault dictionary: application byte addresses eligible for injection
/// in one static region, built from the symbol table with library symbols
/// excluded (§3.2).
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    /// (start, size) extents of eligible symbols.
    extents: Vec<(u32, u32)>,
    total: u64,
}

impl FaultDictionary {
    /// Build the dictionary for a region from the image's symbol table.
    pub fn build(image: &ProgramImage, region: Region) -> FaultDictionary {
        let extents: Vec<(u32, u32)> = image
            .app_symbols(region)
            .filter(|s| s.size > 0)
            .map(|s| (s.addr, s.size))
            .collect();
        let total = extents.iter().map(|&(_, s)| s as u64).sum();
        FaultDictionary { extents, total }
    }

    /// Number of eligible bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Draw a uniformly random eligible byte address.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        let mut k = rng.gen_range(0..self.total);
        for &(addr, size) in &self.extents {
            if k < size as u64 {
                return Some(addr + k as u32);
            }
            k -= size as u64;
        }
        unreachable!("pick index within total")
    }
}

/// Resolve a heap target at fire time: scan live chunks, keep those whose
/// *in-memory* identifier says "user" (the paper's scan), and pick a
/// payload byte weighted by chunk size. `r1`/`r2` are pre-drawn random
/// values so the closure needs no RNG.
pub fn resolve_heap_target(m: &mut Machine, r1: u64, r2: u64) -> Option<u32> {
    let chunks = m.heap.live_chunks();
    let user: Vec<_> = chunks
        .into_iter()
        .filter(|c| c.payload_size > 0 && m.mem.peek_u32(c.header) == MAGIC_USER)
        .collect();
    let total: u64 = user.iter().map(|c| c.payload_size as u64).sum();
    if total == 0 {
        return None;
    }
    let mut k = r1 % total;
    for c in &user {
        if k < c.payload_size as u64 {
            // Include the header bytes occasionally via r2: the paper's
            // extra 8 bytes live in the heap too and are corruptible.
            let with_header = r2.is_multiple_of(64);
            return Some(if with_header {
                c.header + (r2 % 8) as u32
            } else {
                c.payload + k as u32
            });
        }
        k -= c.payload_size as u64;
    }
    unreachable!()
}

/// Resolve a stack target at fire time: a byte in an application-context
/// frame per the EBP walk (§3.2).
pub fn resolve_stack_target(m: &mut Machine, r: u64) -> Option<u32> {
    let extents = fl_machine::app_stack_extents(m);
    let total: u64 = extents.iter().map(|&(lo, hi)| (hi - lo) as u64).sum();
    if total == 0 {
        return None;
    }
    let mut k = r % total;
    for &(lo, hi) in &extents {
        let len = (hi - lo) as u64;
        if k < len {
            return Some(lo + k as u32);
        }
        k -= len;
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{App, AppKind, AppParams};
    use fl_machine::{Exit, MachineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_app() -> App {
        App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim))
    }

    #[test]
    fn dictionary_covers_only_app_symbols() {
        let app = test_app();
        for region in [Region::Text, Region::Data, Region::Bss] {
            let d = FaultDictionary::build(&app.image, region);
            assert!(d.total_bytes() > 0, "{region}");
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..200 {
                let a = d.pick(&mut rng).unwrap();
                let sym = app
                    .image
                    .symbol_at(a)
                    .unwrap_or_else(|| panic!("{a:#x} has no symbol"));
                assert!(!sym.library, "library symbol {} targeted", sym.name);
                assert_eq!(sym.region, region);
            }
        }
    }

    #[test]
    fn dictionary_excludes_mpi_library() {
        let app = test_app();
        let d = FaultDictionary::build(&app.image, Region::Text);
        let mut rng = StdRng::seed_from_u64(7);
        let lib_lo = fl_machine::LIB_BASE;
        for _ in 0..500 {
            let a = d.pick(&mut rng).unwrap();
            assert!(a < lib_lo, "{a:#x} in library space");
        }
    }

    #[test]
    fn register_classes_have_paper_counts() {
        assert_eq!(regular_registers().len(), 10);
        assert_eq!(fp_registers().len(), 15);
        // 8 GPRs x 32 bits = 256 of the §4.3 "512" bit axis (they count
        // 16 registers; we model 10 of 32 bits each = 320 bits).
        let bits: u32 = regular_registers().iter().map(|r| r.width_bits()).sum();
        assert_eq!(bits, 320);
        let fp_bits: u32 = fp_registers().iter().map(|r| r.width_bits()).sum();
        assert_eq!(fp_bits, 8 * 80 + 7 * 16);
    }

    #[test]
    fn heap_scan_finds_only_user_chunks() {
        let app = test_app();
        let mut w = app.world(200_000_000);
        // Run until some MPI activity so both user and MPI chunks exist.
        let g = app.golden(200_000_000);
        let _ = g;
        assert_eq!(w.run(), fl_mpi::WorldExit::Clean);
        let m = w.machine_mut(1);
        let user_chunks: Vec<_> = m
            .heap
            .live_chunks()
            .into_iter()
            .filter(|c| c.tag == fl_machine::AllocTag::User)
            .collect();
        if user_chunks.is_empty() {
            return; // climsim may free everything; nothing to check
        }
        for i in 0..50u64 {
            if let Some(addr) = resolve_heap_target(m, i * 997 + 3, i) {
                let in_user = user_chunks
                    .iter()
                    .any(|c| addr >= c.header && addr < c.payload + c.payload_size);
                assert!(in_user, "{addr:#x} outside user chunks");
            }
        }
    }

    #[test]
    fn heap_scan_respects_corrupted_identifier() {
        // Corrupt a user chunk's identifier: the scan must skip it, as
        // the paper's scan (which trusts the in-memory tag) would.
        let src = "fn main() { var int p; p = malloc(64); storei(p, 1); }";
        let img = fl_lang::compile(src).unwrap();
        let mut m = fl_machine::Machine::load(&img, MachineConfig::default());
        assert!(matches!(m.run(1_000_000), Exit::Halted(0)));
        let chunk = m.heap.live_chunks()[0];
        assert!(resolve_heap_target(&mut m, 5, 1).is_some());
        m.flip_mem_bit(chunk.header, 0); // magic no longer MAGIC_USER
        assert!(resolve_heap_target(&mut m, 5, 1).is_none());
    }

    #[test]
    fn stack_target_lies_in_stack_region() {
        let src = "fn inner(int d) -> int {
                       var int local;
                       local = d * 2;
                       if (d > 0) { return inner(d - 1) + local; }
                       return mpi_rank();
                   }
                   fn main() { mpi_init(); print_int(inner(5)); mpi_finalize(); }";
        let img = fl_lang::compile(src).unwrap();
        let mut m = fl_machine::Machine::load(&img, MachineConfig::default());
        // Run to the MpiCommRank trap deep in the recursion.
        loop {
            match m.run(100_000) {
                Exit::Mpi(fl_isa::Syscall::MpiInit) => m.mpi_complete(None),
                Exit::Mpi(_) => break,
                other => panic!("{other:?}"),
            }
        }
        let stack = *m.mem.map().region(Region::Stack).unwrap();
        for r in 0..100u64 {
            let a = resolve_stack_target(&mut m, r * 13 + 1).expect("stack target");
            assert!(stack.contains(a), "{a:#x} outside stack");
        }
    }

    #[test]
    fn class_labels_match_tables() {
        assert_eq!(TargetClass::ALL.len(), 8);
        assert_eq!(TargetClass::RegularReg.label(), "Regular Reg.");
        assert_eq!(TargetClass::Message.label(), "Message");
        assert_eq!(TargetClass::Text.region(), Some(Region::Text));
        assert_eq!(TargetClass::Heap.region(), None);
    }
}
