//! The single-source campaign specification.
//!
//! A [`CampaignSpec`] is everything needed to run a campaign: the
//! application, its size, the target regions, the [`CampaignConfig`]
//! knobs, and the mode (plain, guard-coverage, or fault-tolerance, each
//! with its policy). It is the one description both front ends consume:
//! the `faultlab` one-shot verbs build one from their flags, and the
//! campaign service accepts the same object as JSON over its socket —
//! `faultlab spec` prints the canonical JSON for a given flag set, so a
//! command line can be turned into a submittable document verbatim.
//!
//! Serialization is deliberately canonical: [`CampaignSpec::to_json`]
//! emits one line with a fixed field order, so equal specs are equal
//! bytes (the server keys resumable campaign state on this property).

use crate::campaign::CampaignConfig;
use crate::chaos::ChaosPolicy;
use crate::json::{parse, Json};
use crate::perturb::PerturbPolicy;
use crate::target::TargetClass;
use fl_apps::AppKind;
use fl_ft::FtPolicy;
use fl_guard::GuardPolicy;
use std::fmt::Write as _;

/// Which experiment family a spec runs, with its policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecMode {
    /// Plain injection campaign (Tables 2–4).
    Campaign,
    /// Guard-off/guard-on detection-coverage campaign.
    Guard(GuardPolicy),
    /// Rank-kill recovery + replication campaign.
    Ft(FtPolicy),
    /// Chaos defense-coverage matrix: every chaos fault model against
    /// every defense column.
    Chaos(ChaosPolicy),
    /// Performance-interference matrix: every perturb fault model (plus
    /// the kill/wedge denominator) against every detection column.
    Perturb(PerturbPolicy),
}

impl SpecMode {
    /// The mode's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            SpecMode::Campaign => "campaign",
            SpecMode::Guard(_) => "guard",
            SpecMode::Ft(_) => "ft",
            SpecMode::Chaos(_) => "chaos",
            SpecMode::Perturb(_) => "perturb",
        }
    }
}

/// A complete, self-contained campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Which application to inject into.
    pub app: AppKind,
    /// Use the CI-sized app parameters instead of the paper-sized ones.
    pub tiny: bool,
    /// Target regions, in campaign order. Ignored by `ft` mode, which
    /// draws rank kills and message faults instead of region faults.
    pub classes: Vec<TargetClass>,
    /// Execution knobs shared by every mode.
    pub campaign: CampaignConfig,
    /// Experiment family and its policy.
    pub mode: SpecMode,
}

impl CampaignSpec {
    /// A plain campaign of `app` with default knobs over all regions.
    pub fn new(app: AppKind) -> CampaignSpec {
        CampaignSpec {
            app,
            tiny: false,
            classes: TargetClass::ALL.to_vec(),
            campaign: CampaignConfig::default(),
            mode: SpecMode::Campaign,
        }
    }

    /// Serialize as canonical JSON: one line, fixed field order. Equal
    /// specs serialize to equal bytes.
    pub fn to_json(&self) -> String {
        let c = &self.campaign;
        let mut out = format!(
            "{{\"app\":\"{}\",\"tiny\":{},\"regions\":[",
            self.app.name(),
            self.tiny
        );
        for (i, r) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", r.name());
        }
        let _ = write!(
            out,
            "],\"injections\":{},\"seed\":{},\"budget_factor\":{},\"threads\":{},\"epoch_rounds\":{},\"ring\":{},\"fastpath\":{},\"mode\":\"{}\"",
            c.injections,
            c.seed,
            c.budget_factor,
            c.threads,
            c.epoch_rounds,
            c.obs_capacity,
            c.fastpath,
            self.mode.name(),
        );
        match &self.mode {
            SpecMode::Campaign => {}
            SpecMode::Guard(g) => {
                let _ = write!(
                    out,
                    ",\"guard\":{{\"checkpoint_rounds\":{},\"max_restarts\":{},\"window_rounds\":{},\"stall_windows\":{},\"max_retransmits\":{}}}",
                    g.checkpoint_rounds,
                    g.max_restarts,
                    g.window_rounds,
                    g.stall_windows,
                    g.max_retransmits,
                );
            }
            SpecMode::Ft(f) => {
                let _ = write!(
                    out,
                    ",\"ft\":{{\"buddy_rounds\":{},\"max_respawns\":{},\"replicas\":{},\"probe_rounds\":{},\"suspect_rounds\":{}}}",
                    f.buddy_rounds,
                    f.max_respawns,
                    f.replicas,
                    f.detector.probe_rounds,
                    f.detector.suspect_rounds,
                );
            }
            SpecMode::Chaos(p) => {
                let (lo, hi) = p.partition_rounds;
                let _ = write!(
                    out,
                    ",\"chaos\":{{\"partition_lo\":{},\"partition_hi\":{},\"reorder_max_delay\":{},\"burst_max\":{},\"node_ranks\":{},\"checkpoint_rounds\":{},\"max_restarts\":{},\"window_rounds\":{},\"stall_windows\":{},\"max_retransmits\":{},\"buddy_rounds\":{},\"max_respawns\":{},\"replicas\":{},\"probe_rounds\":{},\"suspect_rounds\":{}}}",
                    lo,
                    hi,
                    p.reorder_max_delay,
                    p.burst_max,
                    p.node_ranks,
                    p.guard.checkpoint_rounds,
                    p.guard.max_restarts,
                    p.guard.window_rounds,
                    p.guard.stall_windows,
                    p.guard.max_retransmits,
                    p.ft.buddy_rounds,
                    p.ft.max_respawns,
                    p.ft.replicas,
                    p.ft.detector.probe_rounds,
                    p.ft.detector.suspect_rounds,
                );
            }
            SpecMode::Perturb(p) => {
                let _ = write!(
                    out,
                    ",\"perturb\":{{\"probe_rounds\":{},\"suspect_rounds\":{},\"tax_rounds_lo\":{},\"tax_rounds_hi\":{},\"tax_permille_lo\":{},\"tax_permille_hi\":{},\"hog_share_lo\":{},\"hog_share_hi\":{},\"hog_node_ranks\":{},\"stall_per_access_lo\":{},\"stall_per_access_hi\":{},\"stall_window_per16_lo\":{},\"stall_window_per16_hi\":{},\"degraded_permille\":{}}}",
                    p.probe_rounds,
                    p.suspect_rounds,
                    p.tax_rounds.0,
                    p.tax_rounds.1,
                    p.tax_permille.0,
                    p.tax_permille.1,
                    p.hog_share_permille.0,
                    p.hog_share_permille.1,
                    p.hog_node_ranks,
                    p.stall_per_access.0,
                    p.stall_per_access.1,
                    p.stall_window_per16.0,
                    p.stall_window_per16.1,
                    p.degraded_permille,
                );
            }
        }
        out.push('}');
        out
    }

    /// Parse a spec from JSON. Every field except `app` is optional and
    /// falls back to its default; unknown keys are rejected (the same
    /// typo protection the CLI's flag validation gives).
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let v = parse(text)?;
        let Json::Obj(map) = &v else {
            return Err("spec must be a JSON object".into());
        };
        const KEYS: [&str; 15] = [
            "app",
            "tiny",
            "regions",
            "injections",
            "seed",
            "budget_factor",
            "threads",
            "epoch_rounds",
            "ring",
            "fastpath",
            "mode",
            "guard",
            "ft",
            "chaos",
            "perturb",
        ];
        for key in map.keys() {
            if !KEYS.contains(&key.as_str()) {
                return Err(crate::suggest::unknown("spec key", key, &KEYS));
            }
        }
        let app: AppKind = v
            .get("app")
            .and_then(Json::as_str)
            .ok_or("spec needs an `app`")?
            .parse()?;
        let mut spec = CampaignSpec::new(app);
        if let Some(t) = v.get("tiny") {
            spec.tiny = t.as_bool().ok_or("`tiny` must be a bool")?;
        }
        if let Some(r) = v.get("regions") {
            spec.classes = r
                .as_arr()
                .ok_or("`regions` must be an array")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or_else(|| "region names must be strings".to_string())
                        .and_then(|s| s.parse::<TargetClass>())
                })
                .collect::<Result<_, _>>()?;
        }
        let c = &mut spec.campaign;
        if let Some(n) = v.get("injections") {
            c.injections = n.as_u64().ok_or("`injections` must be an integer")? as u32;
        }
        if let Some(n) = v.get("seed") {
            c.seed = n.as_u64().ok_or("`seed` must be an integer")?;
        }
        if let Some(n) = v.get("budget_factor") {
            c.budget_factor = n.as_f64().ok_or("`budget_factor` must be a number")?;
        }
        if let Some(n) = v.get("threads") {
            c.threads = n.as_u64().ok_or("`threads` must be an integer")? as usize;
        }
        if let Some(n) = v.get("epoch_rounds") {
            c.epoch_rounds = n.as_u64().ok_or("`epoch_rounds` must be an integer")? as u32;
        }
        if let Some(n) = v.get("ring") {
            c.obs_capacity = n.as_u64().ok_or("`ring` must be an integer")? as u32;
        }
        if let Some(b) = v.get("fastpath") {
            c.fastpath = b.as_bool().ok_or("`fastpath` must be a bool")?;
        }
        let mode = v.get("mode").map(|m| m.as_str().unwrap_or("?"));
        spec.mode = match mode {
            None | Some("campaign") => SpecMode::Campaign,
            Some("guard") => {
                let mut g = GuardPolicy::default();
                if let Some(p) = v.get("guard") {
                    g.checkpoint_rounds = opt_u64(p, "checkpoint_rounds")?
                        .unwrap_or(g.checkpoint_rounds as u64)
                        as u32;
                    g.max_restarts =
                        opt_u64(p, "max_restarts")?.unwrap_or(g.max_restarts as u64) as u32;
                    g.window_rounds =
                        opt_u64(p, "window_rounds")?.unwrap_or(g.window_rounds as u64) as u32;
                    g.stall_windows =
                        opt_u64(p, "stall_windows")?.unwrap_or(g.stall_windows as u64) as u32;
                    g.max_retransmits =
                        opt_u64(p, "max_retransmits")?.unwrap_or(g.max_retransmits as u64) as u8;
                }
                SpecMode::Guard(g)
            }
            Some("ft") => {
                let mut f = FtPolicy::default();
                if let Some(p) = v.get("ft") {
                    f.buddy_rounds = opt_u64(p, "buddy_rounds")?.unwrap_or(f.buddy_rounds);
                    f.max_respawns =
                        opt_u64(p, "max_respawns")?.unwrap_or(f.max_respawns as u64) as u32;
                    f.replicas = opt_u64(p, "replicas")?.unwrap_or(f.replicas as u64) as u16;
                    f.detector.probe_rounds =
                        opt_u64(p, "probe_rounds")?.unwrap_or(f.detector.probe_rounds);
                    f.detector.suspect_rounds =
                        opt_u64(p, "suspect_rounds")?.unwrap_or(f.detector.suspect_rounds);
                }
                SpecMode::Ft(f)
            }
            Some("chaos") => {
                let mut p = ChaosPolicy::default();
                if let Some(obj) = v.get("chaos") {
                    const CHAOS_KEYS: [&str; 15] = [
                        "partition_lo",
                        "partition_hi",
                        "reorder_max_delay",
                        "burst_max",
                        "node_ranks",
                        "checkpoint_rounds",
                        "max_restarts",
                        "window_rounds",
                        "stall_windows",
                        "max_retransmits",
                        "buddy_rounds",
                        "max_respawns",
                        "replicas",
                        "probe_rounds",
                        "suspect_rounds",
                    ];
                    let Json::Obj(cm) = obj else {
                        return Err("`chaos` must be an object".into());
                    };
                    for key in cm.keys() {
                        if !CHAOS_KEYS.contains(&key.as_str()) {
                            return Err(crate::suggest::unknown("chaos key", key, &CHAOS_KEYS));
                        }
                    }
                    p.partition_rounds.0 =
                        opt_u64(obj, "partition_lo")?.unwrap_or(p.partition_rounds.0);
                    p.partition_rounds.1 =
                        opt_u64(obj, "partition_hi")?.unwrap_or(p.partition_rounds.1);
                    p.reorder_max_delay =
                        opt_u64(obj, "reorder_max_delay")?.unwrap_or(p.reorder_max_delay);
                    p.burst_max = opt_u64(obj, "burst_max")?.unwrap_or(p.burst_max as u64) as u16;
                    p.node_ranks =
                        opt_u64(obj, "node_ranks")?.unwrap_or(p.node_ranks as u64) as u16;
                    let g = &mut p.guard;
                    g.checkpoint_rounds = opt_u64(obj, "checkpoint_rounds")?
                        .unwrap_or(g.checkpoint_rounds as u64)
                        as u32;
                    g.max_restarts =
                        opt_u64(obj, "max_restarts")?.unwrap_or(g.max_restarts as u64) as u32;
                    g.window_rounds =
                        opt_u64(obj, "window_rounds")?.unwrap_or(g.window_rounds as u64) as u32;
                    g.stall_windows =
                        opt_u64(obj, "stall_windows")?.unwrap_or(g.stall_windows as u64) as u32;
                    g.max_retransmits =
                        opt_u64(obj, "max_retransmits")?.unwrap_or(g.max_retransmits as u64) as u8;
                    let f = &mut p.ft;
                    f.buddy_rounds = opt_u64(obj, "buddy_rounds")?.unwrap_or(f.buddy_rounds);
                    f.max_respawns =
                        opt_u64(obj, "max_respawns")?.unwrap_or(f.max_respawns as u64) as u32;
                    f.replicas = opt_u64(obj, "replicas")?.unwrap_or(f.replicas as u64) as u16;
                    f.detector.probe_rounds =
                        opt_u64(obj, "probe_rounds")?.unwrap_or(f.detector.probe_rounds);
                    f.detector.suspect_rounds =
                        opt_u64(obj, "suspect_rounds")?.unwrap_or(f.detector.suspect_rounds);
                }
                SpecMode::Chaos(p)
            }
            Some("perturb") => {
                let mut p = PerturbPolicy::default();
                if let Some(obj) = v.get("perturb") {
                    const PERTURB_KEYS: [&str; 14] = [
                        "probe_rounds",
                        "suspect_rounds",
                        "tax_rounds_lo",
                        "tax_rounds_hi",
                        "tax_permille_lo",
                        "tax_permille_hi",
                        "hog_share_lo",
                        "hog_share_hi",
                        "hog_node_ranks",
                        "stall_per_access_lo",
                        "stall_per_access_hi",
                        "stall_window_per16_lo",
                        "stall_window_per16_hi",
                        "degraded_permille",
                    ];
                    let Json::Obj(pm) = obj else {
                        return Err("`perturb` must be an object".into());
                    };
                    for key in pm.keys() {
                        if !PERTURB_KEYS.contains(&key.as_str()) {
                            return Err(crate::suggest::unknown("perturb key", key, &PERTURB_KEYS));
                        }
                    }
                    p.probe_rounds = opt_u64(obj, "probe_rounds")?.unwrap_or(p.probe_rounds);
                    p.suspect_rounds = opt_u64(obj, "suspect_rounds")?.unwrap_or(p.suspect_rounds);
                    p.tax_rounds.0 = opt_u64(obj, "tax_rounds_lo")?.unwrap_or(p.tax_rounds.0);
                    p.tax_rounds.1 = opt_u64(obj, "tax_rounds_hi")?.unwrap_or(p.tax_rounds.1);
                    p.tax_permille.0 =
                        opt_u64(obj, "tax_permille_lo")?.unwrap_or(p.tax_permille.0 as u64) as u32;
                    p.tax_permille.1 =
                        opt_u64(obj, "tax_permille_hi")?.unwrap_or(p.tax_permille.1 as u64) as u32;
                    p.hog_share_permille.0 = opt_u64(obj, "hog_share_lo")?
                        .unwrap_or(p.hog_share_permille.0 as u64)
                        as u32;
                    p.hog_share_permille.1 = opt_u64(obj, "hog_share_hi")?
                        .unwrap_or(p.hog_share_permille.1 as u64)
                        as u32;
                    p.hog_node_ranks =
                        opt_u64(obj, "hog_node_ranks")?.unwrap_or(p.hog_node_ranks as u64) as u16;
                    p.stall_per_access.0 =
                        opt_u64(obj, "stall_per_access_lo")?.unwrap_or(p.stall_per_access.0);
                    p.stall_per_access.1 =
                        opt_u64(obj, "stall_per_access_hi")?.unwrap_or(p.stall_per_access.1);
                    p.stall_window_per16.0 =
                        opt_u64(obj, "stall_window_per16_lo")?.unwrap_or(p.stall_window_per16.0);
                    p.stall_window_per16.1 =
                        opt_u64(obj, "stall_window_per16_hi")?.unwrap_or(p.stall_window_per16.1);
                    p.degraded_permille =
                        opt_u64(obj, "degraded_permille")?.unwrap_or(p.degraded_permille);
                }
                SpecMode::Perturb(p)
            }
            Some(other) => {
                return Err(format!(
                    "unknown mode `{other}` (expected campaign, guard, ft, chaos or perturb)"
                ))
            }
        };
        Ok(spec)
    }

    /// The per-slot target classes of this spec's record stream — the
    /// `classes` argument [`crate::engine::CompletedSlots::from_jsonl`]
    /// needs to adopt records on resume. Plain campaigns stream one slot
    /// per requested region; chaos campaigns stream the fixed 9 × 6
    /// model × defense grid; perturb campaigns the fixed 5 × 3
    /// model × detection grid; guard and ft campaigns do not stream
    /// adoptable records, so their slot space is empty.
    pub fn record_classes(&self) -> Vec<TargetClass> {
        match &self.mode {
            SpecMode::Campaign => self.classes.clone(),
            SpecMode::Chaos(_) => crate::chaos::chaos_classes(),
            SpecMode::Perturb(_) => crate::perturb::perturb_classes(),
            SpecMode::Guard(_) | SpecMode::Ft(_) => Vec::new(),
        }
    }

    /// Trials per record-stream slot — the companion bound to
    /// [`CampaignSpec::record_classes`] for record adoption.
    pub fn record_injections(&self) -> u32 {
        match &self.mode {
            SpecMode::Campaign | SpecMode::Chaos(_) | SpecMode::Perturb(_) => {
                self.campaign.injections
            }
            SpecMode::Guard(_) | SpecMode::Ft(_) => 0,
        }
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be an integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = CampaignSpec::new(AppKind::Wavetoy);
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json, "canonical form is a fixed point");
    }

    #[test]
    fn guard_and_ft_modes_round_trip() {
        let mut spec = CampaignSpec::new(AppKind::Moldyn);
        spec.tiny = true;
        spec.classes = vec![TargetClass::Message, TargetClass::Heap];
        spec.campaign.injections = 40;
        spec.campaign.seed = u64::MAX; // full-width seeds must survive
        spec.mode = SpecMode::Guard(GuardPolicy {
            checkpoint_rounds: 8,
            max_restarts: 1,
            ..GuardPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        spec.mode = SpecMode::Ft(FtPolicy {
            replicas: 5,
            ..FtPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_spec_uses_defaults() {
        let spec = CampaignSpec::from_json(r#"{"app":"climsim"}"#).unwrap();
        assert_eq!(spec.app, AppKind::Climsim);
        assert_eq!(spec.classes, TargetClass::ALL.to_vec());
        assert_eq!(spec.campaign, CampaignConfig::default());
        assert_eq!(spec.mode, SpecMode::Campaign);
        assert!(!spec.tiny);
    }

    #[test]
    fn partial_policies_keep_defaults() {
        let spec = CampaignSpec::from_json(
            r#"{"app":"wavetoy","mode":"guard","guard":{"max_restarts":9}}"#,
        )
        .unwrap();
        let SpecMode::Guard(g) = spec.mode else {
            panic!("expected guard mode");
        };
        assert_eq!(g.max_restarts, 9);
        assert_eq!(
            g.checkpoint_rounds,
            GuardPolicy::default().checkpoint_rounds
        );

        let spec = CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"ft","ft":{"replicas":2}}"#)
            .unwrap();
        let SpecMode::Ft(f) = spec.mode else {
            panic!("expected ft mode");
        };
        assert_eq!(f.replicas, 2);
        assert_eq!(f.buddy_rounds, FtPolicy::default().buddy_rounds);
    }

    #[test]
    fn chaos_mode_round_trips() {
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.tiny = true;
        spec.campaign.injections = 25;
        spec.mode = SpecMode::Chaos(ChaosPolicy {
            partition_rounds: (32, 96),
            burst_max: 2,
            ..ChaosPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), spec.to_json(), "canonical fixed point");
    }

    #[test]
    fn chaos_spec_golden_json_is_stable() {
        // The canonical one-line wire form — the service keys resumable
        // state on these exact bytes, so the field order is a contract.
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.tiny = true;
        spec.classes = vec![TargetClass::Message];
        spec.campaign.injections = 10;
        spec.campaign.seed = 81;
        spec.mode = SpecMode::Chaos(ChaosPolicy::default());
        assert_eq!(
            spec.to_json(),
            "{\"app\":\"wavetoy\",\"tiny\":true,\"regions\":[\"message\"],\
             \"injections\":10,\"seed\":81,\"budget_factor\":3,\"threads\":0,\
             \"epoch_rounds\":16,\"ring\":0,\"fastpath\":true,\"mode\":\"chaos\",\
             \"chaos\":{\"partition_lo\":64,\"partition_hi\":512,\
             \"reorder_max_delay\":64,\"burst_max\":3,\"node_ranks\":2,\
             \"checkpoint_rounds\":64,\"max_restarts\":3,\"window_rounds\":8,\
             \"stall_windows\":24,\"max_retransmits\":3,\"buddy_rounds\":64,\
             \"max_respawns\":3,\"replicas\":3,\"probe_rounds\":8,\
             \"suspect_rounds\":32}}"
        );
        assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn partial_chaos_policies_keep_defaults() {
        let spec = CampaignSpec::from_json(
            r#"{"app":"wavetoy","mode":"chaos","chaos":{"burst_max":5,"partition_hi":2048}}"#,
        )
        .unwrap();
        let SpecMode::Chaos(p) = spec.mode else {
            panic!("expected chaos mode");
        };
        assert_eq!(p.burst_max, 5);
        assert_eq!(p.partition_rounds, (64, 2048));
        assert_eq!(p.node_ranks, ChaosPolicy::default().node_ranks);
        assert_eq!(p.guard, ChaosPolicy::default().guard);

        // Mode alone is enough; the whole policy defaults.
        let spec = CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"chaos"}"#).unwrap();
        assert_eq!(spec.mode, SpecMode::Chaos(ChaosPolicy::default()));
    }

    #[test]
    fn unknown_chaos_keys_are_rejected_with_a_hint() {
        let err =
            CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"chaos","chaos":{"burst_mx":5}}"#)
                .unwrap_err();
        assert_eq!(
            err,
            "unknown chaos key `burst_mx` (did you mean `burst_max`?)"
        );
        let err =
            CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"chaos","chaos":[]}"#).unwrap_err();
        assert!(err.contains("`chaos` must be an object"), "{err}");
    }

    #[test]
    fn perturb_mode_round_trips() {
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.tiny = true;
        spec.campaign.injections = 12;
        spec.mode = SpecMode::Perturb(PerturbPolicy {
            tax_permille: (950, 990),
            hog_node_ranks: 4,
            ..PerturbPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), spec.to_json(), "canonical fixed point");
    }

    #[test]
    fn perturb_spec_golden_json_is_stable() {
        // Same bytes-are-the-key contract as the chaos golden test.
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.tiny = true;
        spec.classes = vec![TargetClass::Message];
        spec.campaign.injections = 10;
        spec.campaign.seed = 81;
        spec.mode = SpecMode::Perturb(PerturbPolicy::default());
        assert_eq!(
            spec.to_json(),
            "{\"app\":\"wavetoy\",\"tiny\":true,\"regions\":[\"message\"],\
             \"injections\":10,\"seed\":81,\"budget_factor\":3,\"threads\":0,\
             \"epoch_rounds\":16,\"ring\":0,\"fastpath\":true,\"mode\":\"perturb\",\
             \"perturb\":{\"probe_rounds\":8,\"suspect_rounds\":32,\
             \"tax_rounds_lo\":256,\"tax_rounds_hi\":1024,\
             \"tax_permille_lo\":900,\"tax_permille_hi\":995,\
             \"hog_share_lo\":300,\"hog_share_hi\":900,\"hog_node_ranks\":2,\
             \"stall_per_access_lo\":1,\"stall_per_access_hi\":6,\
             \"stall_window_per16_lo\":2,\"stall_window_per16_hi\":8,\
             \"degraded_permille\":1050}}"
        );
        assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn partial_perturb_policies_keep_defaults() {
        let spec = CampaignSpec::from_json(
            r#"{"app":"wavetoy","mode":"perturb","perturb":{"tax_permille_hi":990,"degraded_permille":1100}}"#,
        )
        .unwrap();
        let SpecMode::Perturb(p) = spec.mode else {
            panic!("expected perturb mode");
        };
        assert_eq!(p.tax_permille, (900, 990));
        assert_eq!(p.degraded_permille, 1100);
        assert_eq!(p.hog_node_ranks, PerturbPolicy::default().hog_node_ranks);

        let spec = CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"perturb"}"#).unwrap();
        assert_eq!(spec.mode, SpecMode::Perturb(PerturbPolicy::default()));
    }

    #[test]
    fn unknown_perturb_keys_are_rejected_with_a_hint() {
        let err = CampaignSpec::from_json(
            r#"{"app":"wavetoy","mode":"perturb","perturb":{"tax_permil_lo":5}}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            "unknown perturb key `tax_permil_lo` (did you mean `tax_permille_lo`?)"
        );
        let err = CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"perturb","perturb":[]}"#)
            .unwrap_err();
        assert!(err.contains("`perturb` must be an object"), "{err}");
    }

    #[test]
    fn record_slot_space_matches_the_mode() {
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.campaign.injections = 7;
        assert_eq!(spec.record_classes(), TargetClass::ALL.to_vec());
        assert_eq!(spec.record_injections(), 7);

        spec.mode = SpecMode::Chaos(ChaosPolicy::default());
        let classes = spec.record_classes();
        assert_eq!(classes.len(), 9 * 6, "9 chaos models x 6 defenses");
        assert_eq!(spec.record_injections(), 7);

        spec.mode = SpecMode::Perturb(PerturbPolicy::default());
        let classes = spec.record_classes();
        assert_eq!(classes.len(), 5 * 3, "5 perturb models x 3 detections");
        assert_eq!(spec.record_injections(), 7);

        spec.mode = SpecMode::Ft(FtPolicy::default());
        assert!(spec.record_classes().is_empty());
        assert_eq!(spec.record_injections(), 0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(CampaignSpec::from_json("[]").is_err());
        assert!(CampaignSpec::from_json("{}").is_err(), "app is required");
        assert!(CampaignSpec::from_json(r#"{"app":"namd"}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"turbo"}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"app":"wavetoy","regions":["rom"]}"#).is_err());
        let err = CampaignSpec::from_json(r#"{"app":"wavetoy","injetions":5}"#).unwrap_err();
        assert!(err.contains("unknown spec key"), "{err}");
    }
}
