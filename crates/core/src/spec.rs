//! The single-source campaign specification.
//!
//! A [`CampaignSpec`] is everything needed to run a campaign: the
//! application, its size, the target regions, the [`CampaignConfig`]
//! knobs, and the mode (plain, guard-coverage, or fault-tolerance, each
//! with its policy). It is the one description both front ends consume:
//! the `faultlab` one-shot verbs build one from their flags, and the
//! campaign service accepts the same object as JSON over its socket —
//! `faultlab spec` prints the canonical JSON for a given flag set, so a
//! command line can be turned into a submittable document verbatim.
//!
//! Serialization is deliberately canonical: [`CampaignSpec::to_json`]
//! emits one line with a fixed field order, so equal specs are equal
//! bytes (the server keys resumable campaign state on this property).

use crate::campaign::CampaignConfig;
use crate::json::{parse, Json};
use crate::target::TargetClass;
use fl_apps::AppKind;
use fl_ft::FtPolicy;
use fl_guard::GuardPolicy;
use std::fmt::Write as _;

/// Which experiment family a spec runs, with its policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecMode {
    /// Plain injection campaign (Tables 2–4).
    Campaign,
    /// Guard-off/guard-on detection-coverage campaign.
    Guard(GuardPolicy),
    /// Rank-kill recovery + replication campaign.
    Ft(FtPolicy),
}

impl SpecMode {
    /// The mode's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            SpecMode::Campaign => "campaign",
            SpecMode::Guard(_) => "guard",
            SpecMode::Ft(_) => "ft",
        }
    }
}

/// A complete, self-contained campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Which application to inject into.
    pub app: AppKind,
    /// Use the CI-sized app parameters instead of the paper-sized ones.
    pub tiny: bool,
    /// Target regions, in campaign order. Ignored by `ft` mode, which
    /// draws rank kills and message faults instead of region faults.
    pub classes: Vec<TargetClass>,
    /// Execution knobs shared by every mode.
    pub campaign: CampaignConfig,
    /// Experiment family and its policy.
    pub mode: SpecMode,
}

impl CampaignSpec {
    /// A plain campaign of `app` with default knobs over all regions.
    pub fn new(app: AppKind) -> CampaignSpec {
        CampaignSpec {
            app,
            tiny: false,
            classes: TargetClass::ALL.to_vec(),
            campaign: CampaignConfig::default(),
            mode: SpecMode::Campaign,
        }
    }

    /// Serialize as canonical JSON: one line, fixed field order. Equal
    /// specs serialize to equal bytes.
    pub fn to_json(&self) -> String {
        let c = &self.campaign;
        let mut out = format!(
            "{{\"app\":\"{}\",\"tiny\":{},\"regions\":[",
            self.app.name(),
            self.tiny
        );
        for (i, r) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", r.name());
        }
        let _ = write!(
            out,
            "],\"injections\":{},\"seed\":{},\"budget_factor\":{},\"threads\":{},\"epoch_rounds\":{},\"ring\":{},\"fastpath\":{},\"mode\":\"{}\"",
            c.injections,
            c.seed,
            c.budget_factor,
            c.threads,
            c.epoch_rounds,
            c.obs_capacity,
            c.fastpath,
            self.mode.name(),
        );
        match &self.mode {
            SpecMode::Campaign => {}
            SpecMode::Guard(g) => {
                let _ = write!(
                    out,
                    ",\"guard\":{{\"checkpoint_rounds\":{},\"max_restarts\":{},\"window_rounds\":{},\"stall_windows\":{},\"max_retransmits\":{}}}",
                    g.checkpoint_rounds,
                    g.max_restarts,
                    g.window_rounds,
                    g.stall_windows,
                    g.max_retransmits,
                );
            }
            SpecMode::Ft(f) => {
                let _ = write!(
                    out,
                    ",\"ft\":{{\"buddy_rounds\":{},\"max_respawns\":{},\"replicas\":{},\"probe_rounds\":{},\"suspect_rounds\":{}}}",
                    f.buddy_rounds,
                    f.max_respawns,
                    f.replicas,
                    f.detector.probe_rounds,
                    f.detector.suspect_rounds,
                );
            }
        }
        out.push('}');
        out
    }

    /// Parse a spec from JSON. Every field except `app` is optional and
    /// falls back to its default; unknown keys are rejected (the same
    /// typo protection the CLI's flag validation gives).
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let v = parse(text)?;
        let Json::Obj(map) = &v else {
            return Err("spec must be a JSON object".into());
        };
        const KEYS: [&str; 12] = [
            "app",
            "tiny",
            "regions",
            "injections",
            "seed",
            "budget_factor",
            "threads",
            "epoch_rounds",
            "ring",
            "fastpath",
            "mode",
            "guard",
        ];
        for key in map.keys() {
            if !KEYS.contains(&key.as_str()) && key != "ft" {
                return Err(format!("unknown spec key `{key}`"));
            }
        }
        let app: AppKind = v
            .get("app")
            .and_then(Json::as_str)
            .ok_or("spec needs an `app`")?
            .parse()?;
        let mut spec = CampaignSpec::new(app);
        if let Some(t) = v.get("tiny") {
            spec.tiny = t.as_bool().ok_or("`tiny` must be a bool")?;
        }
        if let Some(r) = v.get("regions") {
            spec.classes = r
                .as_arr()
                .ok_or("`regions` must be an array")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or_else(|| "region names must be strings".to_string())
                        .and_then(|s| s.parse::<TargetClass>())
                })
                .collect::<Result<_, _>>()?;
        }
        let c = &mut spec.campaign;
        if let Some(n) = v.get("injections") {
            c.injections = n.as_u64().ok_or("`injections` must be an integer")? as u32;
        }
        if let Some(n) = v.get("seed") {
            c.seed = n.as_u64().ok_or("`seed` must be an integer")?;
        }
        if let Some(n) = v.get("budget_factor") {
            c.budget_factor = n.as_f64().ok_or("`budget_factor` must be a number")?;
        }
        if let Some(n) = v.get("threads") {
            c.threads = n.as_u64().ok_or("`threads` must be an integer")? as usize;
        }
        if let Some(n) = v.get("epoch_rounds") {
            c.epoch_rounds = n.as_u64().ok_or("`epoch_rounds` must be an integer")? as u32;
        }
        if let Some(n) = v.get("ring") {
            c.obs_capacity = n.as_u64().ok_or("`ring` must be an integer")? as u32;
        }
        if let Some(b) = v.get("fastpath") {
            c.fastpath = b.as_bool().ok_or("`fastpath` must be a bool")?;
        }
        let mode = v.get("mode").map(|m| m.as_str().unwrap_or("?"));
        spec.mode = match mode {
            None | Some("campaign") => SpecMode::Campaign,
            Some("guard") => {
                let mut g = GuardPolicy::default();
                if let Some(p) = v.get("guard") {
                    g.checkpoint_rounds = opt_u64(p, "checkpoint_rounds")?
                        .unwrap_or(g.checkpoint_rounds as u64)
                        as u32;
                    g.max_restarts =
                        opt_u64(p, "max_restarts")?.unwrap_or(g.max_restarts as u64) as u32;
                    g.window_rounds =
                        opt_u64(p, "window_rounds")?.unwrap_or(g.window_rounds as u64) as u32;
                    g.stall_windows =
                        opt_u64(p, "stall_windows")?.unwrap_or(g.stall_windows as u64) as u32;
                    g.max_retransmits =
                        opt_u64(p, "max_retransmits")?.unwrap_or(g.max_retransmits as u64) as u8;
                }
                SpecMode::Guard(g)
            }
            Some("ft") => {
                let mut f = FtPolicy::default();
                if let Some(p) = v.get("ft") {
                    f.buddy_rounds = opt_u64(p, "buddy_rounds")?.unwrap_or(f.buddy_rounds);
                    f.max_respawns =
                        opt_u64(p, "max_respawns")?.unwrap_or(f.max_respawns as u64) as u32;
                    f.replicas = opt_u64(p, "replicas")?.unwrap_or(f.replicas as u64) as u16;
                    f.detector.probe_rounds =
                        opt_u64(p, "probe_rounds")?.unwrap_or(f.detector.probe_rounds);
                    f.detector.suspect_rounds =
                        opt_u64(p, "suspect_rounds")?.unwrap_or(f.detector.suspect_rounds);
                }
                SpecMode::Ft(f)
            }
            Some(other) => {
                return Err(format!(
                    "unknown mode `{other}` (expected campaign, guard or ft)"
                ))
            }
        };
        Ok(spec)
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be an integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = CampaignSpec::new(AppKind::Wavetoy);
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json, "canonical form is a fixed point");
    }

    #[test]
    fn guard_and_ft_modes_round_trip() {
        let mut spec = CampaignSpec::new(AppKind::Moldyn);
        spec.tiny = true;
        spec.classes = vec![TargetClass::Message, TargetClass::Heap];
        spec.campaign.injections = 40;
        spec.campaign.seed = u64::MAX; // full-width seeds must survive
        spec.mode = SpecMode::Guard(GuardPolicy {
            checkpoint_rounds: 8,
            max_restarts: 1,
            ..GuardPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        spec.mode = SpecMode::Ft(FtPolicy {
            replicas: 5,
            ..FtPolicy::default()
        });
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_spec_uses_defaults() {
        let spec = CampaignSpec::from_json(r#"{"app":"climsim"}"#).unwrap();
        assert_eq!(spec.app, AppKind::Climsim);
        assert_eq!(spec.classes, TargetClass::ALL.to_vec());
        assert_eq!(spec.campaign, CampaignConfig::default());
        assert_eq!(spec.mode, SpecMode::Campaign);
        assert!(!spec.tiny);
    }

    #[test]
    fn partial_policies_keep_defaults() {
        let spec = CampaignSpec::from_json(
            r#"{"app":"wavetoy","mode":"guard","guard":{"max_restarts":9}}"#,
        )
        .unwrap();
        let SpecMode::Guard(g) = spec.mode else {
            panic!("expected guard mode");
        };
        assert_eq!(g.max_restarts, 9);
        assert_eq!(
            g.checkpoint_rounds,
            GuardPolicy::default().checkpoint_rounds
        );

        let spec = CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"ft","ft":{"replicas":2}}"#)
            .unwrap();
        let SpecMode::Ft(f) = spec.mode else {
            panic!("expected ft mode");
        };
        assert_eq!(f.replicas, 2);
        assert_eq!(f.buddy_rounds, FtPolicy::default().buddy_rounds);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(CampaignSpec::from_json("[]").is_err());
        assert!(CampaignSpec::from_json("{}").is_err(), "app is required");
        assert!(CampaignSpec::from_json(r#"{"app":"namd"}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"app":"wavetoy","mode":"turbo"}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"app":"wavetoy","regions":["rom"]}"#).is_err());
        let err = CampaignSpec::from_json(r#"{"app":"wavetoy","injetions":5}"#).unwrap_err();
        assert!(err.contains("unknown spec key"), "{err}");
    }
}
