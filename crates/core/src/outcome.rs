//! Error-manifestation classification (§5.1 of the paper).
//!
//! Every injection experiment ends in exactly one of six classes:
//! `Correct` (the fault did not manifest), `Crash`, `Hang`,
//! `AppDetected`, `MpiDetected`, or `Incorrect` (clean completion with
//! wrong output — "most dangerous of all possible errors because there is
//! little sign during the execution that can alert the user").
//!
//! fl-guard extends the taxonomy with two guarded-execution classes:
//! `DetectedByGuard` (the guard noticed the fault but could not finish
//! the run within its restart budget) and `Recovered` (the guard
//! intervened — CRC retransmit, watchdog rollback — and the run still
//! completed with correct output). Unguarded campaigns never produce
//! either, so pre-guard reports are unchanged.

use fl_mpi::WorldExit;
use std::fmt;

/// The §5.1 manifestation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Manifestation {
    /// The injected fault had no observable effect.
    Correct,
    /// Abnormal termination (signal, MPI internal error, glibc abort,
    /// nonzero/premature exit).
    Crash,
    /// The application failed to complete within its budget or
    /// deadlocked.
    Hang,
    /// Output differs from the fault-free reference with no error
    /// indication — silent data corruption.
    Incorrect,
    /// An application internal consistency check caught the fault and
    /// aborted.
    AppDetected,
    /// The user-registered MPI error handler fired.
    MpiDetected,
    /// fl-guard detected the fault (CRC exhaustion, watchdog trip, or
    /// repeated failure) but the restart budget ran out before a clean
    /// finish.
    DetectedByGuard,
    /// fl-guard detected the fault, intervened, and the run completed
    /// with output matching the fault-free reference.
    Recovered,
    /// The heartbeat failure detector declared a rank dead (or wedged)
    /// and no recovery path completed the run — the fl-ft analogue of a
    /// job-killing process failure.
    RankLost,
    /// A replicated run outvoted a divergent replica and completed with
    /// correct output — the fault was both detected *and* masked.
    MaskedByReplica,
    /// The *application itself* recovered from a process failure through
    /// the fl-ulfm API — it observed `MPIX_ERR_PROC_FAILED`, agreed,
    /// shrank the world, restored its own checkpoint, and completed with
    /// output matching the fault-free reference. The harness never
    /// intervened.
    RecoveredByApp,
    /// The channel guard's CRC caught an in-flight corruption and the
    /// retransmitted pristine copy completed the run with correct
    /// output — the fault never left the wire (fl-chaos' provable CRC
    /// coverage class).
    MaskedByChannel,
    /// The run completed with correct output but measurably slower than
    /// the fault-free reference — the fl-perturb class for performance
    /// interference that degrades without corrupting.
    Degraded,
}

impl Manifestation {
    /// All classes: the paper's six in table order, the two
    /// guarded-execution classes fl-guard added, the two process-level
    /// classes fl-ft added, fl-ulfm's application-recovery class,
    /// fl-chaos' channel-masking class, then fl-perturb's degradation
    /// class.
    pub const ALL: [Manifestation; 13] = [
        Manifestation::Correct,
        Manifestation::Crash,
        Manifestation::Hang,
        Manifestation::Incorrect,
        Manifestation::AppDetected,
        Manifestation::MpiDetected,
        Manifestation::DetectedByGuard,
        Manifestation::Recovered,
        Manifestation::RankLost,
        Manifestation::MaskedByReplica,
        Manifestation::RecoveredByApp,
        Manifestation::MaskedByChannel,
        Manifestation::Degraded,
    ];

    /// True if the fault manifested at all (everything except `Correct`).
    /// The paper's "error rate" is the fraction of injections for which
    /// this holds.
    pub fn is_error(self) -> bool {
        self != Manifestation::Correct
    }

    /// Machine-readable slug — the single source of truth for JSONL
    /// field values and the wire protocol. Round-trips through
    /// [`Manifestation::from_slug`].
    pub fn slug(self) -> &'static str {
        match self {
            Manifestation::Correct => "correct",
            Manifestation::Crash => "crash",
            Manifestation::Hang => "hang",
            Manifestation::Incorrect => "incorrect",
            Manifestation::AppDetected => "app-detected",
            Manifestation::MpiDetected => "mpi-detected",
            Manifestation::DetectedByGuard => "guard-detected",
            Manifestation::Recovered => "recovered",
            Manifestation::RankLost => "rank-lost",
            Manifestation::MaskedByReplica => "masked-by-replica",
            Manifestation::RecoveredByApp => "recovered-by-app",
            Manifestation::MaskedByChannel => "masked-by-channel",
            Manifestation::Degraded => "degraded",
        }
    }

    /// Parse a [`Manifestation::slug`] back into the class.
    pub fn from_slug(s: &str) -> Option<Manifestation> {
        Manifestation::ALL.into_iter().find(|m| m.slug() == s)
    }
}

impl fmt::Display for Manifestation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Manifestation::Correct => "Correct",
            Manifestation::Crash => "Crash",
            Manifestation::Hang => "Hang",
            Manifestation::Incorrect => "Incorrect",
            Manifestation::AppDetected => "App Detected",
            Manifestation::MpiDetected => "MPI Detected",
            Manifestation::DetectedByGuard => "Guard Detected",
            Manifestation::Recovered => "Recovered",
            Manifestation::RankLost => "Rank Lost",
            Manifestation::MaskedByReplica => "Masked (Replica)",
            Manifestation::RecoveredByApp => "Recovered (App)",
            Manifestation::MaskedByChannel => "Masked (Channel)",
            Manifestation::Degraded => "Degraded",
        };
        f.write_str(s)
    }
}

/// Classify a finished run: the world's exit plus, for clean exits, the
/// comparison of the app's output against the fault-free reference.
pub fn classify(exit: &WorldExit, output: &[u8], golden_output: &[u8]) -> Manifestation {
    match exit {
        WorldExit::Clean => {
            if output == golden_output {
                Manifestation::Correct
            } else {
                Manifestation::Incorrect
            }
        }
        WorldExit::Crashed { .. } => Manifestation::Crash,
        WorldExit::Hung { .. } => Manifestation::Hang,
        WorldExit::AppAborted { .. } => Manifestation::AppDetected,
        WorldExit::MpiDetected { .. } => Manifestation::MpiDetected,
        WorldExit::GuardDetected { .. } => Manifestation::DetectedByGuard,
        WorldExit::RankFailed { .. } => Manifestation::RankLost,
    }
}

/// Aggregated counts for one injection region (one row of Tables 2–4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Injections performed.
    pub executions: u32,
    /// Count per manifestation class, indexed as [`Manifestation::ALL`].
    counts: [u32; 13],
}

impl Tally {
    /// Record one outcome.
    pub fn record(&mut self, m: Manifestation) {
        self.executions += 1;
        let idx = Manifestation::ALL.iter().position(|&x| x == m).unwrap();
        self.counts[idx] += 1;
    }

    /// Count of one class.
    pub fn count(&self, m: Manifestation) -> u32 {
        self.counts[Manifestation::ALL.iter().position(|&x| x == m).unwrap()]
    }

    /// Total manifested errors.
    pub fn errors(&self) -> u32 {
        self.executions - self.count(Manifestation::Correct)
    }

    /// The paper's error rate: errors / executions, in percent.
    pub fn error_rate_percent(&self) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        100.0 * self.errors() as f64 / self.executions as f64
    }

    /// Percentage of *manifested errors* in class `m` — the tables'
    /// "Error Manifestations (Percent)" columns.
    pub fn manifestation_percent(&self, m: Manifestation) -> f64 {
        let e = self.errors();
        if e == 0 || m == Manifestation::Correct {
            return 0.0;
        }
        100.0 * self.count(m) as f64 / e as f64
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.executions += other.executions;
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_exits() {
        let g = b"out".to_vec();
        assert_eq!(
            classify(&WorldExit::Clean, b"out", &g),
            Manifestation::Correct
        );
        assert_eq!(
            classify(&WorldExit::Clean, b"bad", &g),
            Manifestation::Incorrect
        );
        assert_eq!(
            classify(
                &WorldExit::Crashed {
                    rank: 0,
                    reason: "x".into()
                },
                b"",
                &g
            ),
            Manifestation::Crash
        );
        assert_eq!(
            classify(&WorldExit::Hung { reason: "x".into() }, b"", &g),
            Manifestation::Hang
        );
        assert_eq!(
            classify(
                &WorldExit::AppAborted {
                    rank: 0,
                    msg: "x".into()
                },
                b"",
                &g
            ),
            Manifestation::AppDetected
        );
        assert_eq!(
            classify(
                &WorldExit::MpiDetected {
                    rank: 0,
                    what: "x".into()
                },
                b"",
                &g
            ),
            Manifestation::MpiDetected
        );
        assert_eq!(
            classify(
                &WorldExit::GuardDetected {
                    rank: 0,
                    what: "x".into()
                },
                b"",
                &g
            ),
            Manifestation::DetectedByGuard
        );
        assert_eq!(
            classify(&WorldExit::RankFailed { rank: 0, round: 7 }, b"", &g),
            Manifestation::RankLost
        );
    }

    #[test]
    fn tally_percentages() {
        let mut t = Tally::default();
        for _ in 0..60 {
            t.record(Manifestation::Correct);
        }
        for _ in 0..20 {
            t.record(Manifestation::Crash);
        }
        for _ in 0..10 {
            t.record(Manifestation::Hang);
        }
        for _ in 0..10 {
            t.record(Manifestation::Incorrect);
        }
        assert_eq!(t.executions, 100);
        assert_eq!(t.errors(), 40);
        assert!((t.error_rate_percent() - 40.0).abs() < 1e-12);
        assert!((t.manifestation_percent(Manifestation::Crash) - 50.0).abs() < 1e-12);
        assert!((t.manifestation_percent(Manifestation::Hang) - 25.0).abs() < 1e-12);
        assert_eq!(t.manifestation_percent(Manifestation::Correct), 0.0);
    }

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::default();
        assert_eq!(t.error_rate_percent(), 0.0);
        assert_eq!(t.manifestation_percent(Manifestation::Crash), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = Tally::default();
        a.record(Manifestation::Crash);
        let mut b = Tally::default();
        b.record(Manifestation::Correct);
        b.record(Manifestation::Crash);
        a.merge(&b);
        assert_eq!(a.executions, 3);
        assert_eq!(a.count(Manifestation::Crash), 2);
    }

    #[test]
    fn is_error_classification() {
        assert!(!Manifestation::Correct.is_error());
        for m in Manifestation::ALL.into_iter().skip(1) {
            assert!(m.is_error());
        }
    }
}
