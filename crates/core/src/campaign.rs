//! Campaign execution: thousands of independent injection experiments,
//! sampled per §4.3 and run in parallel across host threads.
//!
//! One *trial* = one application execution with exactly one injected
//! fault: a (target, bit, rank, time) point drawn uniformly from the
//! fault space, exactly the three-axis sampling of §4.3. The trial's
//! world is torn down afterwards — the paper rebooted to a clean state
//! between injections; we get the same isolation by constructing fresh
//! machines.

use crate::outcome::{classify, Manifestation, Tally};
use crate::target::{
    fp_registers, regular_registers, resolve_heap_target, resolve_stack_target, FaultDictionary,
    TargetClass,
};
use fl_apps::{App, AppKind, Golden};
use fl_mpi::{MessageFault, MpiWorld, PendingInjection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Injections per target class (the paper used 400–500 for most
    /// regions, up to 2000 for messages).
    pub injections: u32,
    /// Master seed; trial k uses `seed + k` so campaigns are reproducible
    /// and trials independent.
    pub seed: u64,
    /// Hang bound: per-rank instruction budget = `budget_factor` × the
    /// longest golden rank (the paper's wait-past-expected-completion).
    pub budget_factor: f64,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { injections: 500, seed: 0xFA_17, budget_factor: 3.0, threads: 0 }
    }
}

/// One trial's record: what was hit and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRecord {
    /// Target class.
    pub class: TargetClass,
    /// Human-readable description of the fault point (register + bit,
    /// address, or message offset).
    pub detail: String,
    /// The observed outcome.
    pub outcome: Manifestation,
}

/// Results for one class (one row of Tables 2–4).
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// The injected class.
    pub class: TargetClass,
    /// Aggregate counts.
    pub tally: Tally,
    /// Per-trial records (register analysis, §6.1.1).
    pub trials: Vec<TrialRecord>,
}

/// A full campaign's results for one application.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Which application.
    pub app: AppKind,
    /// One entry per requested class, in request order.
    pub classes: Vec<ClassResult>,
    /// The fault-free reference run.
    pub golden: Golden,
}

impl CampaignResult {
    /// The result row for a class, if it was part of the campaign.
    pub fn class(&self, c: TargetClass) -> Option<&ClassResult> {
        self.classes.iter().find(|r| r.class == c)
    }
}

/// Run a campaign over the given classes.
pub fn run_campaign(app: &App, classes: &[TargetClass], cfg: &CampaignConfig) -> CampaignResult {
    let budget0 = 2_000_000_000;
    let golden = app.golden(budget0);
    let budget =
        (*golden.insns.iter().max().unwrap() as f64 * cfg.budget_factor) as u64 + 2_000_000;

    let dicts = Dictionaries::build(app);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };

    let mut results = Vec::new();
    for (ci, &class) in classes.iter().enumerate() {
        let next = AtomicU32::new(0);
        let records: Mutex<Vec<TrialRecord>> = Mutex::new(Vec::new());
        let class_seed = cfg.seed.wrapping_add((ci as u64) << 32);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= cfg.injections {
                        break;
                    }
                    let rec = run_trial(
                        app,
                        &golden,
                        &dicts,
                        class,
                        class_seed.wrapping_add(k as u64),
                        budget,
                    );
                    records.lock().unwrap().push(rec);
                });
            }
        })
        .expect("campaign worker panicked");
        let trials = records.into_inner().unwrap();
        let mut tally = Tally::default();
        for t in &trials {
            tally.record(t.outcome);
        }
        results.push(ClassResult { class, tally, trials });
    }
    CampaignResult { app: app.kind, classes: results, golden }
}

/// Pre-built fault dictionaries for the static regions.
pub struct Dictionaries {
    text: FaultDictionary,
    data: FaultDictionary,
    bss: FaultDictionary,
}

impl Dictionaries {
    /// Build all three static-region dictionaries for an app.
    pub fn build(app: &App) -> Dictionaries {
        Dictionaries {
            text: FaultDictionary::build(&app.image, fl_machine::Region::Text),
            data: FaultDictionary::build(&app.image, fl_machine::Region::Data),
            bss: FaultDictionary::build(&app.image, fl_machine::Region::Bss),
        }
    }

    fn get(&self, class: TargetClass) -> &FaultDictionary {
        match class {
            TargetClass::Text => &self.text,
            TargetClass::Data => &self.data,
            TargetClass::Bss => &self.bss,
            _ => unreachable!("no dictionary for {class:?}"),
        }
    }
}

/// Execute one injection experiment.
pub fn run_trial(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
) -> TrialRecord {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let nranks = app.params.nranks;
    let rank = rng.gen_range(0..nranks);
    let mut cfg = app.world_config(budget);
    cfg.seed = trial_seed; // vary moldyn's schedule per trial (§4.2.2)
    let mut world = MpiWorld::new(&app.image, cfg);

    let detail = match class {
        TargetClass::Message => {
            let volume = golden.recv_bytes[rank as usize].max(1);
            let off = rng.gen_range(0..volume);
            let bit = rng.gen_range(0..8u8);
            world.set_message_fault(MessageFault { rank, at_recv_byte: off, bit });
            format!("rank {rank} recv byte {off} bit {bit}")
        }
        _ => {
            let at_insns = rng.gen_range(1..golden.insns[rank as usize].max(2));
            let (action, detail): (Box<dyn FnMut(&mut fl_machine::Machine) + Send>, String) =
                match class {
                    TargetClass::RegularReg | TargetClass::FpReg => {
                        let regs = if class == TargetClass::RegularReg {
                            regular_registers()
                        } else {
                            fp_registers()
                        };
                        let reg = regs[rng.gen_range(0..regs.len())];
                        let bit = rng.gen_range(0..reg.width_bits());
                        (
                            Box::new(move |m: &mut fl_machine::Machine| {
                                m.flip_register_bit(reg, bit);
                            }),
                            format!("{reg} bit {bit}"),
                        )
                    }
                    TargetClass::Text | TargetClass::Data | TargetClass::Bss => {
                        let addr = dicts
                            .get(class)
                            .pick(&mut rng)
                            .expect("static region must have symbols");
                        let bit = rng.gen_range(0..8u8);
                        (
                            Box::new(move |m: &mut fl_machine::Machine| {
                                m.flip_mem_bit(addr, bit);
                            }),
                            format!("{} {addr:#010x} bit {bit}", class.label()),
                        )
                    }
                    TargetClass::Heap => {
                        let (r1, r2) = (rng.gen::<u64>(), rng.gen::<u64>());
                        let bit = rng.gen_range(0..8u8);
                        (
                            Box::new(move |m: &mut fl_machine::Machine| {
                                if let Some(addr) = resolve_heap_target(m, r1, r2) {
                                    m.flip_mem_bit(addr, bit);
                                }
                            }),
                            format!("heap draw {r1:#x} bit {bit}"),
                        )
                    }
                    TargetClass::Stack => {
                        let r = rng.gen::<u64>();
                        let bit = rng.gen_range(0..8u8);
                        (
                            Box::new(move |m: &mut fl_machine::Machine| {
                                if let Some(addr) = resolve_stack_target(m, r) {
                                    m.flip_mem_bit(addr, bit);
                                }
                            }),
                            format!("stack draw {r:#x} bit {bit}"),
                        )
                    }
                    TargetClass::Message => unreachable!(),
                };
            world.set_injection(PendingInjection { rank, at_insns, action, period: None });
            format!("rank {rank} t={at_insns}: {detail}")
        }
    };

    let exit = world.run();
    let output = app.comparable_output(&world);
    let outcome = classify(&exit, &output, &golden.output);
    TrialRecord { class, detail, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::AppParams;

    fn mini_campaign(kind: AppKind, classes: &[TargetClass], n: u32) -> CampaignResult {
        let app = App::build(kind, AppParams::tiny(kind));
        run_campaign(
            &app,
            classes,
            &CampaignConfig { injections: n, seed: 42, budget_factor: 3.0, threads: 0 },
        )
    }

    #[test]
    fn campaign_is_reproducible() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let cfg = CampaignConfig { injections: 12, seed: 7, budget_factor: 3.0, threads: 2 };
        let a = run_campaign(&app, &[TargetClass::RegularReg], &cfg);
        let b = run_campaign(&app, &[TargetClass::RegularReg], &cfg);
        assert_eq!(a.classes[0].tally, b.classes[0].tally);
    }

    #[test]
    fn register_faults_manifest_often() {
        // §6.1.1: integer registers are the most vulnerable (38-63 %).
        let r = mini_campaign(AppKind::Wavetoy, &[TargetClass::RegularReg], 60);
        let rate = r.classes[0].tally.error_rate_percent();
        assert!(rate > 20.0, "regular-register error rate {rate:.1}% too low");
    }

    #[test]
    fn fp_faults_manifest_rarely() {
        let r = mini_campaign(
            AppKind::Wavetoy,
            &[TargetClass::RegularReg, TargetClass::FpReg],
            60,
        );
        let regular = r.classes[0].tally.error_rate_percent();
        let fp = r.classes[1].tally.error_rate_percent();
        assert!(
            fp < regular,
            "FP rate ({fp:.1}%) must be below regular-register rate ({regular:.1}%)"
        );
    }

    #[test]
    fn trials_complete_for_every_class() {
        let r = mini_campaign(AppKind::Climsim, &TargetClass::ALL, 6);
        assert_eq!(r.classes.len(), 8);
        for c in &r.classes {
            assert_eq!(c.tally.executions, 6, "{:?}", c.class);
            assert_eq!(c.trials.len(), 6);
        }
    }

    #[test]
    fn message_faults_hit_headers_and_payloads() {
        let r = mini_campaign(AppKind::Moldyn, &[TargetClass::Message], 40);
        let t = &r.classes[0].tally;
        assert_eq!(t.executions, 40);
        // Some message faults must manifest for a data-heavy app with
        // checksums; and not all of them (padding bytes, dead payloads).
        assert!(t.errors() > 0, "no message fault manifested");
        assert!(t.errors() < 40, "every message fault manifested");
    }
}
