//! Campaign execution: thousands of independent injection experiments,
//! sampled per §4.3 and run in parallel across host threads.
//!
//! One *trial* = one application execution with exactly one injected
//! fault: a (target, bit, rank, time) point drawn uniformly from the
//! fault space, exactly the three-axis sampling of §4.3. The trial's
//! world is torn down afterwards — the paper rebooted to a clean state
//! between injections; we get the same isolation by constructing fresh
//! machines.

use crate::obs::{CampaignMetrics, TrialTrace};
use crate::outcome::{classify, Manifestation, Tally};
use crate::target::{
    fp_registers, regular_registers, resolve_heap_target, resolve_stack_target, FaultDictionary,
    TargetClass,
};
use fl_apps::{App, AppKind, Golden};
use fl_machine::{ExecStats, SharedCode};
use fl_mpi::{MessageFault, MpiWorld, PendingInjection, WorldConfig};
use fl_snap::EpochCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Injections per target class (the paper used 400–500 for most
    /// regions, up to 2000 for messages).
    pub injections: u32,
    /// Master seed; trial k uses `seed + k` so campaigns are reproducible
    /// and trials independent.
    pub seed: u64,
    /// Hang bound: per-rank instruction budget = `budget_factor` × the
    /// longest golden rank (the paper's wait-past-expected-completion).
    pub budget_factor: f64,
    /// Worker threads (0 = all available).
    pub threads: usize,
    /// Checkpoint the golden world every this many scheduler rounds and
    /// start each trial by forking from the latest checkpoint before its
    /// injection point instead of re-executing the fault-free prefix
    /// (0 = run every trial cold). Only deterministic applications fork;
    /// moldyn re-seeds its schedule per trial (§4.2.2) and always runs
    /// cold regardless of this setting.
    pub epoch_rounds: u32,
    /// Per-rank `fl-obs` event-ring capacity. 0 (the default) disables
    /// recording entirely; nonzero makes every trial record structured
    /// events and the campaign aggregate [`CampaignMetrics`]. The same
    /// capacity is applied to the golden prefix the epoch cache
    /// replays, so forked and cold trials emit bit-identical streams.
    pub obs_capacity: u32,
    /// Run trial machines with the execution fast path (software TLB +
    /// basic-block dispatch) enabled. On by default; turning it off
    /// forces every machine onto the slow per-instruction path, which
    /// is observably identical but much slower — useful only for
    /// benchmarking the fast path and for divergence hunting.
    pub fastpath: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 500,
            seed: 0xFA_17,
            budget_factor: 3.0,
            threads: 0,
            epoch_rounds: 16,
            obs_capacity: 0,
            fastpath: true,
        }
    }
}

/// One trial's record: what was hit and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRecord {
    /// Target class.
    pub class: TargetClass,
    /// Human-readable description of the fault point (register + bit,
    /// address, or message offset).
    pub detail: String,
    /// The observed outcome.
    pub outcome: Manifestation,
}

/// Results for one class (one row of Tables 2–4).
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// The injected class.
    pub class: TargetClass,
    /// Aggregate counts.
    pub tally: Tally,
    /// Per-trial records (register analysis, §6.1.1).
    pub trials: Vec<TrialRecord>,
}

/// A full campaign's results for one application.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Which application.
    pub app: AppKind,
    /// One entry per requested class, in request order.
    pub classes: Vec<ClassResult>,
    /// The fault-free reference run.
    pub golden: Golden,
    /// Event-stream aggregates, present iff the campaign ran with
    /// `obs_capacity > 0`.
    pub metrics: Option<CampaignMetrics>,
    /// Guest instructions retired across every trial (the sum of each
    /// rank's final instruction counter). Forked trials report the same
    /// count as their cold equivalents — restored counters include the
    /// replayed prefix — so the figure is a property of the campaign,
    /// not of the execution strategy. 0 for model campaigns, which do
    /// not collect counters.
    pub insns_total: u64,
    /// Wall-clock duration of the trial-execution phase, in
    /// nanoseconds (excludes the golden run and dictionary builds).
    pub wall_nanos: u64,
    /// Decoded-code cache effectiveness summed over every trial's
    /// machines. Telemetry, like `wall_nanos`: hit/miss ratios depend
    /// on fork warmth and worker scheduling, so they are reported in
    /// the throughput footer and telemetry rows but never enter
    /// records, metrics rows or any byte-identity contract. Zero for
    /// model campaigns.
    pub exec_stats: ExecStats,
}

impl CampaignResult {
    /// The result row for a class, if it was part of the campaign.
    pub fn class(&self, c: TargetClass) -> Option<&ClassResult> {
        self.classes.iter().find(|r| r.class == c)
    }

    /// Trials executed across all classes.
    pub fn trials_total(&self) -> u64 {
        self.classes.iter().map(|c| c.trials.len() as u64).sum()
    }

    /// Campaign instruction throughput in millions of guest
    /// instructions per wall-clock second (0 if nothing was timed).
    pub fn mips(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.insns_total as f64 * 1e3 / self.wall_nanos as f64
    }

    /// Campaign trial throughput in trials per wall-clock second
    /// (0 if nothing was timed).
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.trials_total() as f64 * 1e9 / self.wall_nanos as f64
    }
}

/// The hang bound derived from a golden run (`budget_factor` × the
/// longest rank, plus slack for fault-lengthened paths).
pub(crate) fn trial_budget(golden: &Golden, cfg: &CampaignConfig) -> u64 {
    (*golden.insns.iter().max().unwrap() as f64 * cfg.budget_factor) as u64 + 2_000_000
}

/// The seed of trial `k` of class position `ci` — recomputable, so any
/// recorded trial can be replayed bit-exactly from its campaign
/// coordinates.
pub fn trial_seed(campaign_seed: u64, ci: usize, k: u32) -> u64 {
    campaign_seed
        .wrapping_add((ci as u64) << 32)
        .wrapping_add(k as u64)
}

/// The world configuration a trial (or the epoch cache's golden prefix)
/// runs under: the app's own configuration with the campaign's event
/// recording threaded through. Forked and cold trials must use the same
/// recording capacity or their streams could not be bit-identical.
pub(crate) fn trial_world_config(
    app: &App,
    budget: u64,
    obs_capacity: u32,
    fastpath: bool,
) -> WorldConfig {
    let mut wcfg = app.world_config(budget);
    wcfg.machine.obs_capacity = obs_capacity;
    wcfg.machine.fastpath = fastpath;
    wcfg
}

/// Build the epoch snapshot cache for the campaign fast path, or `None`
/// when the configuration or the application rules forking out.
pub(crate) fn build_epochs(
    app: &App,
    cfg: &CampaignConfig,
    budget: u64,
    code: Option<&SharedCode>,
) -> Option<EpochCache> {
    if cfg.epoch_rounds == 0 {
        return None;
    }
    let wcfg = trial_world_config(app, budget, cfg.obs_capacity, cfg.fastpath);
    // Forking replays the *golden* prefix; an app with nondeterministic
    // scheduling re-draws its arrival order per trial, so its prefix is
    // not shared and every trial must run cold.
    if wcfg.nondet {
        return None;
    }
    Some(EpochCache::build_with_code(
        &app.image,
        wcfg,
        cfg.epoch_rounds,
        code,
    ))
}

/// Campaign execution (the [`crate::CampaignBuilder`] backend): a thin
/// client of the engine — no control, no sink, no resume. The driver
/// loop itself (scheduler, worker pool, slot-addressed records) lives
/// in [`crate::engine`].
pub(crate) fn run_campaign_impl(
    app: &App,
    classes: &[TargetClass],
    cfg: &CampaignConfig,
) -> CampaignResult {
    crate::engine::run_campaign_engine(
        app,
        classes,
        cfg,
        &crate::engine::NullSink,
        &crate::engine::EngineControl::new(),
        None,
    )
    .result
    .expect("uncontrolled engine runs always complete")
}

/// Trial replay from campaign coordinates (the [`crate::CampaignBuilder`]
/// backend). Returns the full trace; event streams are empty unless
/// `cfg.obs_capacity > 0`.
pub(crate) fn replay_trial_impl(
    app: &App,
    classes: &[TargetClass],
    cfg: &CampaignConfig,
    ci: usize,
    k: u32,
) -> TrialTrace {
    assert!(ci < classes.len(), "class index {ci} out of range");
    assert!(k < cfg.injections, "trial index {k} out of range");
    let golden = app.golden(2_000_000_000);
    let budget = trial_budget(&golden, cfg);
    let dicts = Dictionaries::build(app);
    let code = cfg.fastpath.then(|| app.image.pre_decode());
    let epochs = build_epochs(app, cfg, budget, code.as_ref());
    let run = run_trial_inner(
        app,
        &golden,
        &dicts,
        classes[ci],
        trial_seed(cfg.seed, ci, k),
        budget,
        epochs.as_ref(),
        cfg.obs_capacity,
        cfg.fastpath,
        code.as_ref(),
    );
    TrialTrace {
        record: run.record,
        rank: run.rank,
        insns: run.insns,
        streams: run.world.event_streams(),
    }
}

/// Pre-built fault dictionaries for the static regions.
pub struct Dictionaries {
    text: FaultDictionary,
    data: FaultDictionary,
    bss: FaultDictionary,
}

impl Dictionaries {
    /// Build all three static-region dictionaries for an app.
    pub fn build(app: &App) -> Dictionaries {
        Dictionaries {
            text: FaultDictionary::build(&app.image, fl_machine::Region::Text),
            data: FaultDictionary::build(&app.image, fl_machine::Region::Data),
            bss: FaultDictionary::build(&app.image, fl_machine::Region::Bss),
        }
    }

    fn get(&self, class: TargetClass) -> &FaultDictionary {
        match class {
            TargetClass::Text => &self.text,
            TargetClass::Data => &self.data,
            TargetClass::Bss => &self.bss,
            _ => unreachable!("no dictionary for {class:?}"),
        }
    }
}

/// Execute one injection experiment cold: fresh machines, full prefix
/// re-execution — the paper's reboot-between-injections isolation.
#[deprecated(note = "direct driver entry point; drive campaigns through \
            `CampaignBuilder` (or `run_spec`) and single trials through \
            `CampaignBuilder::replay`")]
pub fn run_trial(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
) -> TrialRecord {
    run_trial_inner(
        app, golden, dicts, class, trial_seed, budget, None, 0, true, None,
    )
    .record
}

/// The state mutation an armed machine fault applies when it fires.
type FaultAction = Box<dyn FnMut(&mut fl_machine::Machine) + Send>;

/// A fully drawn fault, ready to arm on any world.
pub(crate) enum Fault {
    Message(MessageFault),
    Machine { at_insns: u64, action: FaultAction },
}

/// A complete fault specification drawn from a trial seed: the victim
/// rank, the armable fault, and its human-readable record detail.
pub(crate) struct DrawnFault {
    pub rank: u16,
    pub fault: Fault,
    pub detail: String,
}

impl DrawnFault {
    /// Arm the fault on `world`, consuming it (a machine fault's action
    /// is a boxed closure and cannot be cloned).
    pub fn arm(self, world: &mut MpiWorld) {
        match self.fault {
            Fault::Message(f) => world.set_message_fault(f),
            Fault::Machine { at_insns, action } => world.set_injection(PendingInjection {
                rank: self.rank,
                at_insns,
                action,
                period: None,
            }),
        }
    }
}

/// Draw a trial's complete fault specification from its seed — §4.3's
/// three-axis sampling. Baseline and guarded runs of the same trial seed
/// draw the *identical* fault (the RNG is consumed before any world
/// exists), which is what makes per-trial guard-off/guard-on coverage
/// comparison meaningful.
pub(crate) fn draw_fault(
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    nranks: u16,
) -> DrawnFault {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let rank = rng.gen_range(0..nranks);

    let (fault, detail) = match class {
        TargetClass::Message => {
            let volume = golden.recv_bytes[rank as usize].max(1);
            let off = rng.gen_range(0..volume);
            let bit = rng.gen_range(0..8u8);
            (
                Fault::Message(MessageFault {
                    rank,
                    at_recv_byte: off,
                    bit,
                }),
                format!("rank {rank} recv byte {off} bit {bit}"),
            )
        }
        _ => {
            let at_insns = rng.gen_range(1..golden.insns[rank as usize].max(2));
            let (action, detail): (FaultAction, String) = match class {
                TargetClass::RegularReg | TargetClass::FpReg => {
                    let regs = if class == TargetClass::RegularReg {
                        regular_registers()
                    } else {
                        fp_registers()
                    };
                    let reg = regs[rng.gen_range(0..regs.len())];
                    let bit = rng.gen_range(0..reg.width_bits());
                    (
                        Box::new(move |m: &mut fl_machine::Machine| {
                            m.flip_register_bit(reg, bit);
                        }),
                        format!("{reg} bit {bit}"),
                    )
                }
                TargetClass::Text | TargetClass::Data | TargetClass::Bss => {
                    let addr = dicts
                        .get(class)
                        .pick(&mut rng)
                        .expect("static region must have symbols");
                    let bit = rng.gen_range(0..8u8);
                    (
                        Box::new(move |m: &mut fl_machine::Machine| {
                            m.flip_mem_bit(addr, bit);
                        }),
                        format!("{} {addr:#010x} bit {bit}", class.label()),
                    )
                }
                TargetClass::Heap => {
                    let (r1, r2) = (rng.gen::<u64>(), rng.gen::<u64>());
                    let bit = rng.gen_range(0..8u8);
                    (
                        Box::new(move |m: &mut fl_machine::Machine| {
                            if let Some(addr) = resolve_heap_target(m, r1, r2) {
                                m.flip_mem_bit(addr, bit);
                            }
                        }),
                        format!("heap draw {r1:#x} bit {bit}"),
                    )
                }
                TargetClass::Stack => {
                    let r = rng.gen::<u64>();
                    let bit = rng.gen_range(0..8u8);
                    (
                        Box::new(move |m: &mut fl_machine::Machine| {
                            if let Some(addr) = resolve_stack_target(m, r) {
                                m.flip_mem_bit(addr, bit);
                            }
                        }),
                        format!("stack draw {r:#x} bit {bit}"),
                    )
                }
                TargetClass::Message => unreachable!(),
                // Chaos classes are drawn by the chaos engine, never
                // here; the perturb class by draw_perturb.
                TargetClass::Network
                | TargetClass::Syscall
                | TargetClass::Process
                | TargetClass::Sched => {
                    unreachable!("chaos/perturb classes are drawn by their engines")
                }
            };
            (
                Fault::Machine { at_insns, action },
                format!("rank {rank} t={at_insns}: {detail}"),
            )
        }
    };
    DrawnFault {
        rank,
        fault,
        detail,
    }
}

/// Execute one injection experiment, forking from the latest eligible
/// epoch checkpoint when a cache is supplied.
///
/// Cold and forked trials consume the identical random sequence — the
/// complete fault specification is drawn before any world exists — so a
/// campaign produces the same records either way; forking only skips the
/// redundant fault-free prefix.
#[deprecated(note = "direct driver entry point; drive campaigns through \
            `CampaignBuilder` (or `run_spec`) and single trials through \
            `CampaignBuilder::replay`")]
pub fn run_trial_forked(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
    epochs: Option<&EpochCache>,
) -> TrialRecord {
    run_trial_inner(
        app, golden, dicts, class, trial_seed, budget, epochs, 0, true, None,
    )
    .record
}

/// Execute one injection experiment with event recording on, returning
/// the full [`TrialTrace`]. When forking from an epoch cache, that
/// cache must have been built with the same `obs_capacity` (the golden
/// prefix's events are part of the snapshot).
#[deprecated(note = "direct driver entry point; drive campaigns through \
            `CampaignBuilder` (or `run_spec`) and traced replays through \
            `CampaignBuilder::replay_traced`")]
#[allow(clippy::too_many_arguments)]
pub fn run_trial_traced(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
    epochs: Option<&EpochCache>,
    obs_capacity: u32,
) -> TrialTrace {
    let run = run_trial_inner(
        app,
        golden,
        dicts,
        class,
        trial_seed,
        budget,
        epochs,
        obs_capacity,
        true,
        None,
    );
    TrialTrace {
        record: run.record,
        rank: run.rank,
        insns: run.insns,
        streams: run.world.event_streams(),
    }
}

/// A finished trial before teardown: the record, the victim rank, the
/// guest instructions retired across all ranks, and the ended world
/// (still holding every rank's event log).
pub(crate) struct TrialRun {
    pub(crate) record: TrialRecord,
    pub(crate) rank: u16,
    pub(crate) insns: u64,
    pub(crate) world: MpiWorld,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_trial_inner(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
    epochs: Option<&EpochCache>,
    obs_capacity: u32,
    fastpath: bool,
    code: Option<&SharedCode>,
) -> TrialRun {
    let drawn = draw_fault(golden, dicts, class, trial_seed, app.params.nranks);
    let (rank, detail) = (drawn.rank, drawn.detail.clone());

    // Pick the latest checkpoint the injection point permits: the target
    // rank must not yet have passed the fire point (strictly, for
    // instruction-timed faults) or ingested the struck byte.
    let epoch = epochs.and_then(|e| match &drawn.fault {
        Fault::Message(f) => e.best_for_recv(rank, f.at_recv_byte),
        Fault::Machine { at_insns, .. } => e.best_for_insns(rank, *at_insns),
    });
    let mut world = match epoch {
        Some(e) => e.snap.restore(),
        None => {
            let mut cfg = trial_world_config(app, budget, obs_capacity, fastpath);
            cfg.seed = trial_seed; // vary moldyn's schedule per trial (§4.2.2)
            MpiWorld::new_with_code(&app.image, cfg, code)
        }
    };
    drawn.arm(&mut world);

    let exit = world.run();
    let output = app.comparable_output(&world);
    let outcome = classify(&exit, &output, &golden.output);
    let insns = (0..app.params.nranks)
        .map(|r| world.machine(r).counters.insns)
        .sum();
    TrialRun {
        record: TrialRecord {
            class,
            detail,
            outcome,
        },
        rank,
        insns,
        world,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::AppParams;

    fn mini_campaign(kind: AppKind, classes: &[TargetClass], n: u32) -> CampaignResult {
        let app = App::build(kind, AppParams::tiny(kind));
        run_campaign_impl(
            &app,
            classes,
            &CampaignConfig {
                injections: n,
                seed: 42,
                ..Default::default()
            },
        )
    }

    #[test]
    fn campaign_is_reproducible() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let cfg = CampaignConfig {
            injections: 12,
            seed: 7,
            threads: 2,
            ..Default::default()
        };
        let a = run_campaign_impl(&app, &[TargetClass::RegularReg], &cfg);
        let b = run_campaign_impl(&app, &[TargetClass::RegularReg], &cfg);
        assert_eq!(a.classes[0].tally, b.classes[0].tally);
    }

    #[test]
    fn register_faults_manifest_often() {
        // §6.1.1: integer registers are the most vulnerable (38-63 %).
        let r = mini_campaign(AppKind::Wavetoy, &[TargetClass::RegularReg], 60);
        let rate = r.classes[0].tally.error_rate_percent();
        assert!(
            rate > 20.0,
            "regular-register error rate {rate:.1}% too low"
        );
    }

    #[test]
    fn fp_faults_manifest_rarely() {
        let r = mini_campaign(
            AppKind::Wavetoy,
            &[TargetClass::RegularReg, TargetClass::FpReg],
            60,
        );
        let regular = r.classes[0].tally.error_rate_percent();
        let fp = r.classes[1].tally.error_rate_percent();
        assert!(
            fp < regular,
            "FP rate ({fp:.1}%) must be below regular-register rate ({regular:.1}%)"
        );
    }

    #[test]
    fn trials_complete_for_every_class() {
        let r = mini_campaign(AppKind::Climsim, &TargetClass::ALL, 6);
        assert_eq!(r.classes.len(), 8);
        for c in &r.classes {
            assert_eq!(c.tally.executions, 6, "{:?}", c.class);
            assert_eq!(c.trials.len(), 6);
        }
    }

    #[test]
    fn snapshot_and_cold_paths_produce_identical_records() {
        // The tentpole invariant at campaign level: forking trials from
        // epoch checkpoints must change nothing observable — same
        // details, same manifestations, same tallies.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let classes = [
            TargetClass::RegularReg,
            TargetClass::Stack,
            TargetClass::Message,
        ];
        let cold = CampaignConfig {
            injections: 10,
            seed: 0xF0,
            epoch_rounds: 0,
            ..Default::default()
        };
        let snap = CampaignConfig {
            injections: 10,
            seed: 0xF0,
            epoch_rounds: 8,
            ..Default::default()
        };
        let a = run_campaign_impl(&app, &classes, &cold);
        let b = run_campaign_impl(&app, &classes, &snap);
        for (ca, cb) in a.classes.iter().zip(&b.classes) {
            assert_eq!(
                ca.trials, cb.trials,
                "{:?}: fork path diverged from cold path",
                ca.class
            );
            assert_eq!(ca.tally, cb.tally);
        }
    }

    #[test]
    fn trial_order_is_deterministic_across_thread_counts() {
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let one = CampaignConfig {
            injections: 8,
            seed: 5,
            threads: 1,
            ..Default::default()
        };
        let four = CampaignConfig {
            injections: 8,
            seed: 5,
            threads: 4,
            ..Default::default()
        };
        let a = run_campaign_impl(&app, &[TargetClass::RegularReg], &one);
        let b = run_campaign_impl(&app, &[TargetClass::RegularReg], &four);
        // Not just the same multiset: record k must sit in slot k.
        assert_eq!(a.classes[0].trials, b.classes[0].trials);
    }

    #[test]
    fn replay_reproduces_recorded_trials() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let classes = [TargetClass::RegularReg, TargetClass::Message];
        let cfg = CampaignConfig {
            injections: 6,
            seed: 0xBEEF,
            ..Default::default()
        };
        let result = run_campaign_impl(&app, &classes, &cfg);
        for (ci, class_result) in result.classes.iter().enumerate() {
            for k in [0u32, 3, 5] {
                let replayed = replay_trial_impl(&app, &classes, &cfg, ci, k);
                assert_eq!(
                    replayed.record, class_result.trials[k as usize],
                    "replay of class {ci} trial {k} diverged"
                );
            }
        }
    }

    #[test]
    fn message_faults_hit_headers_and_payloads() {
        let r = mini_campaign(AppKind::Moldyn, &[TargetClass::Message], 40);
        let t = &r.classes[0].tally;
        assert_eq!(t.executions, 40);
        // Some message faults must manifest for a data-heavy app with
        // checksums; and not all of them (padding bytes, dead payloads).
        assert!(t.errors() > 0, "no message fault manifested");
        assert!(t.errors() < 40, "every message fault manifested");
    }
}
