//! Progress-metric hang detection (§7 of the paper).
//!
//! "Although determining if an execution will terminate is undecidable,
//! simple progress metrics (e.g., FLOPS, messages per second or loop
//! iterations per minute) can provide some practical detection
//! mechanisms. If the application's performance drops below a
//! user-defined threshold, it is very likely that the code is in a
//! non-terminating mode."
//!
//! [`ProgressMonitor`] samples the cluster-wide counters between
//! scheduler rounds and flags a stall when *all* of the configured
//! metrics stop advancing for a number of consecutive windows — catching
//! spin-loop hangs long before the instruction budget expires, and
//! catching deadlocks trivially (nothing advances at all).
//!
//! The module also carries [`EngineProgress`], the campaign engine's
//! progress event. One-shot CLI progress lines, the server's status
//! responses and the watch stream are all subscribers of this single
//! event source ([`StderrProgress`] is the CLI one) — there is no
//! ad-hoc progress printing anywhere else.

use crate::engine::EngineSink;
use fl_mpi::MpiWorld;
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of a campaign engine run's progress counters, emitted to
/// every [`EngineSink`] after each trial completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProgress {
    /// Trials in the campaign's slot space.
    pub total: u64,
    /// Slots finished so far this run, including adopted ones.
    pub done: u64,
    /// Slots adopted from a previous run's records rather than executed.
    pub resumed: u64,
    /// Wall-clock nanoseconds since the engine run started.
    pub wall_nanos: u64,
}

impl EngineProgress {
    /// Trials actually executed by this run (done minus adopted).
    pub fn executed(&self) -> u64 {
        self.done.saturating_sub(self.resumed)
    }

    /// Completed fraction in percent (100 for an empty campaign).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        100.0 * self.done as f64 / self.total as f64
    }

    /// Executed-trial throughput in trials per second (0 before any
    /// wall time has elapsed).
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.executed() as f64 * 1e9 / self.wall_nanos as f64
    }

    /// One-line human rendering, shared by the CLI progress line and
    /// the server's watch stream.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}/{} trials ({:.0}%), {:.1} trials/s",
            self.done,
            self.total,
            self.percent(),
            self.trials_per_sec()
        );
        if self.resumed > 0 {
            line.push_str(&format!(" ({} resumed)", self.resumed));
        }
        line
    }
}

/// The one-shot CLI's progress subscriber: rewrites a stderr status
/// line every `every` trials (and on completion). Stderr so piped
/// stdout (JSONL, TSV) stays clean.
pub struct StderrProgress {
    every: u64,
    last: AtomicU64,
}

impl StderrProgress {
    /// Report every `every` trials (clamped to at least 1).
    pub fn new(every: u64) -> StderrProgress {
        StderrProgress {
            every: every.max(1),
            last: AtomicU64::new(0),
        }
    }
}

impl EngineSink for StderrProgress {
    fn progress(&self, p: EngineProgress) {
        if !p.done.is_multiple_of(self.every) && p.done != p.total {
            return;
        }
        // Monotonic filter: completion-order updates may arrive slightly
        // out of order across workers; never paint a stale count.
        let prev = self.last.fetch_max(p.done, Ordering::Relaxed);
        if p.done < prev {
            return;
        }
        eprint!("\r  {}", p.render());
        if p.done == p.total {
            eprintln!();
        }
    }
}

/// Aggregate progress counters across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSample {
    /// Instructions retired (cluster-wide).
    pub insns: u64,
    /// Floating-point operations retired.
    pub flops: u64,
    /// MPI calls issued.
    pub mpi_calls: u64,
    /// Basic blocks retired.
    pub blocks: u64,
}

impl ProgressSample {
    /// Snapshot a world's counters.
    pub fn take(world: &MpiWorld, nranks: u16) -> ProgressSample {
        let mut s = ProgressSample::default();
        for r in 0..nranks {
            let c = &world.machine(r).counters;
            s.insns += c.insns;
            s.flops += c.flops;
            s.mpi_calls += c.mpi_calls;
            s.blocks += c.blocks;
        }
        s
    }
}

/// Verdict after each sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressVerdict {
    /// At least one useful-work metric advanced in the last window.
    Progressing,
    /// No useful-work metric has advanced for this many consecutive
    /// windows (instructions may still be retiring — a spin loop).
    Stalled(u32),
}

/// Sliding stall detector over the §7 metrics.
#[derive(Debug, Clone)]
pub struct ProgressMonitor {
    last: Option<ProgressSample>,
    consecutive_stalls: u32,
    /// Windows of no useful progress before [`ProgressMonitor::hung`]
    /// reports true.
    pub stall_threshold: u32,
}

impl ProgressMonitor {
    /// Create a monitor that reports a hang after `stall_threshold`
    /// windows without FLOP or MPI progress.
    pub fn new(stall_threshold: u32) -> ProgressMonitor {
        ProgressMonitor {
            last: None,
            consecutive_stalls: 0,
            stall_threshold,
        }
    }

    /// Feed the next sample.
    pub fn observe(&mut self, s: ProgressSample) -> ProgressVerdict {
        let verdict = match self.last {
            None => ProgressVerdict::Progressing,
            Some(prev) => {
                let useful = s.flops > prev.flops || s.mpi_calls > prev.mpi_calls;
                if useful {
                    self.consecutive_stalls = 0;
                    ProgressVerdict::Progressing
                } else {
                    self.consecutive_stalls += 1;
                    ProgressVerdict::Stalled(self.consecutive_stalls)
                }
            }
        };
        self.last = Some(s);
        verdict
    }

    /// Whether the stall threshold has been reached.
    pub fn hung(&self) -> bool {
        self.consecutive_stalls >= self.stall_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(flops: u64, mpi: u64, insns: u64) -> ProgressSample {
        ProgressSample {
            insns,
            flops,
            mpi_calls: mpi,
            blocks: insns / 5,
        }
    }

    #[test]
    fn engine_progress_derivations() {
        let p = EngineProgress {
            total: 200,
            done: 50,
            resumed: 10,
            wall_nanos: 2_000_000_000,
        };
        assert_eq!(p.executed(), 40);
        assert!((p.percent() - 25.0).abs() < 1e-12);
        assert!((p.trials_per_sec() - 20.0).abs() < 1e-12);
        let line = p.render();
        assert!(line.contains("50/200"), "{line}");
        assert!(line.contains("(10 resumed)"), "{line}");
        assert_eq!(EngineProgress::default().percent(), 100.0);
        assert_eq!(EngineProgress::default().trials_per_sec(), 0.0);
    }

    #[test]
    fn progressing_while_flops_advance() {
        let mut m = ProgressMonitor::new(3);
        assert_eq!(m.observe(s(0, 0, 0)), ProgressVerdict::Progressing);
        assert_eq!(m.observe(s(10, 0, 100)), ProgressVerdict::Progressing);
        assert_eq!(m.observe(s(20, 0, 200)), ProgressVerdict::Progressing);
        assert!(!m.hung());
    }

    #[test]
    fn spin_loop_detected_despite_retiring_instructions() {
        // The key §7 case: instructions advance, useful work does not.
        let mut m = ProgressMonitor::new(3);
        m.observe(s(10, 5, 100));
        assert_eq!(m.observe(s(10, 5, 10_000)), ProgressVerdict::Stalled(1));
        assert_eq!(m.observe(s(10, 5, 20_000)), ProgressVerdict::Stalled(2));
        assert_eq!(m.observe(s(10, 5, 30_000)), ProgressVerdict::Stalled(3));
        assert!(m.hung());
    }

    #[test]
    fn mpi_progress_counts_as_useful() {
        let mut m = ProgressMonitor::new(2);
        m.observe(s(10, 5, 100));
        m.observe(s(10, 5, 200));
        assert_eq!(m.observe(s(10, 6, 300)), ProgressVerdict::Progressing);
        assert!(!m.hung());
    }

    #[test]
    fn stall_counter_resets_on_progress() {
        let mut m = ProgressMonitor::new(3);
        m.observe(s(1, 0, 1));
        m.observe(s(1, 0, 2));
        m.observe(s(1, 0, 3));
        assert_eq!(m.observe(s(2, 0, 4)), ProgressVerdict::Progressing);
        m.observe(s(2, 0, 5));
        assert_eq!(m.observe(s(2, 0, 6)), ProgressVerdict::Stalled(2));
        assert!(!m.hung());
    }
}
