//! Progress-metric hang detection (§7 of the paper).
//!
//! "Although determining if an execution will terminate is undecidable,
//! simple progress metrics (e.g., FLOPS, messages per second or loop
//! iterations per minute) can provide some practical detection
//! mechanisms. If the application's performance drops below a
//! user-defined threshold, it is very likely that the code is in a
//! non-terminating mode."
//!
//! [`ProgressMonitor`] samples the cluster-wide counters between
//! scheduler rounds and flags a stall when *all* of the configured
//! metrics stop advancing for a number of consecutive windows — catching
//! spin-loop hangs long before the instruction budget expires, and
//! catching deadlocks trivially (nothing advances at all).

use fl_mpi::MpiWorld;

/// Aggregate progress counters across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSample {
    /// Instructions retired (cluster-wide).
    pub insns: u64,
    /// Floating-point operations retired.
    pub flops: u64,
    /// MPI calls issued.
    pub mpi_calls: u64,
    /// Basic blocks retired.
    pub blocks: u64,
}

impl ProgressSample {
    /// Snapshot a world's counters.
    pub fn take(world: &MpiWorld, nranks: u16) -> ProgressSample {
        let mut s = ProgressSample::default();
        for r in 0..nranks {
            let c = &world.machine(r).counters;
            s.insns += c.insns;
            s.flops += c.flops;
            s.mpi_calls += c.mpi_calls;
            s.blocks += c.blocks;
        }
        s
    }
}

/// Verdict after each sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressVerdict {
    /// At least one useful-work metric advanced in the last window.
    Progressing,
    /// No useful-work metric has advanced for this many consecutive
    /// windows (instructions may still be retiring — a spin loop).
    Stalled(u32),
}

/// Sliding stall detector over the §7 metrics.
#[derive(Debug, Clone)]
pub struct ProgressMonitor {
    last: Option<ProgressSample>,
    consecutive_stalls: u32,
    /// Windows of no useful progress before [`ProgressMonitor::hung`]
    /// reports true.
    pub stall_threshold: u32,
}

impl ProgressMonitor {
    /// Create a monitor that reports a hang after `stall_threshold`
    /// windows without FLOP or MPI progress.
    pub fn new(stall_threshold: u32) -> ProgressMonitor {
        ProgressMonitor {
            last: None,
            consecutive_stalls: 0,
            stall_threshold,
        }
    }

    /// Feed the next sample.
    pub fn observe(&mut self, s: ProgressSample) -> ProgressVerdict {
        let verdict = match self.last {
            None => ProgressVerdict::Progressing,
            Some(prev) => {
                let useful = s.flops > prev.flops || s.mpi_calls > prev.mpi_calls;
                if useful {
                    self.consecutive_stalls = 0;
                    ProgressVerdict::Progressing
                } else {
                    self.consecutive_stalls += 1;
                    ProgressVerdict::Stalled(self.consecutive_stalls)
                }
            }
        };
        self.last = Some(s);
        verdict
    }

    /// Whether the stall threshold has been reached.
    pub fn hung(&self) -> bool {
        self.consecutive_stalls >= self.stall_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(flops: u64, mpi: u64, insns: u64) -> ProgressSample {
        ProgressSample {
            insns,
            flops,
            mpi_calls: mpi,
            blocks: insns / 5,
        }
    }

    #[test]
    fn progressing_while_flops_advance() {
        let mut m = ProgressMonitor::new(3);
        assert_eq!(m.observe(s(0, 0, 0)), ProgressVerdict::Progressing);
        assert_eq!(m.observe(s(10, 0, 100)), ProgressVerdict::Progressing);
        assert_eq!(m.observe(s(20, 0, 200)), ProgressVerdict::Progressing);
        assert!(!m.hung());
    }

    #[test]
    fn spin_loop_detected_despite_retiring_instructions() {
        // The key §7 case: instructions advance, useful work does not.
        let mut m = ProgressMonitor::new(3);
        m.observe(s(10, 5, 100));
        assert_eq!(m.observe(s(10, 5, 10_000)), ProgressVerdict::Stalled(1));
        assert_eq!(m.observe(s(10, 5, 20_000)), ProgressVerdict::Stalled(2));
        assert_eq!(m.observe(s(10, 5, 30_000)), ProgressVerdict::Stalled(3));
        assert!(m.hung());
    }

    #[test]
    fn mpi_progress_counts_as_useful() {
        let mut m = ProgressMonitor::new(2);
        m.observe(s(10, 5, 100));
        m.observe(s(10, 5, 200));
        assert_eq!(m.observe(s(10, 6, 300)), ProgressVerdict::Progressing);
        assert!(!m.hung());
    }

    #[test]
    fn stall_counter_resets_on_progress() {
        let mut m = ProgressMonitor::new(3);
        m.observe(s(1, 0, 1));
        m.observe(s(1, 0, 2));
        m.observe(s(1, 0, 3));
        assert_eq!(m.observe(s(2, 0, 4)), ProgressVerdict::Progressing);
        m.observe(s(2, 0, 5));
        assert_eq!(m.observe(s(2, 0, 6)), ProgressVerdict::Stalled(2));
        assert!(!m.hung());
    }
}
