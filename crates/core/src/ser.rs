//! Soft-error-rate arithmetic (§1–§2 of the paper).
//!
//! The paper motivates the study with back-of-envelope rates: FIT figures
//! per megabit (1000–5000 FIT/Mb typical, 500 conservative), the derived
//! "a system with 1 GB of RAM can expect a soft error every 10 days", and
//! the ASCI Q extrapolation "33,000 × 0.05 or roughly 1,650 errors every
//! ten days" under 95 % ECC coverage. This module makes those numbers —
//! and the campaign planner built on them — first-class and unit-tested.

/// Hours in a billion-hour FIT window.
const FIT_HOURS: f64 = 1e9;

/// A memory subsystem's soft-error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerModel {
    /// Failure-In-Time rate per megabit (failures per 10⁹ device-hours).
    pub fit_per_mbit: f64,
    /// Fraction of soft errors the ECC corrects or detects (the paper
    /// cites ~90 % on-chip coverage from Compaq and 82 % from
    /// Constantinescu; its ASCI Q example assumes 95 %).
    pub ecc_coverage: f64,
}

impl SerModel {
    /// The paper's conservative model: 500 FIT/Mb, no ECC.
    pub fn conservative_no_ecc() -> SerModel {
        SerModel {
            fit_per_mbit: 500.0,
            ecc_coverage: 0.0,
        }
    }

    /// Raw soft errors per hour for `mbytes` of memory.
    pub fn errors_per_hour(&self, mbytes: f64) -> f64 {
        let mbits = mbytes * 8.0;
        self.fit_per_mbit * mbits / FIT_HOURS
    }

    /// Errors per hour that *escape* the ECC.
    pub fn uncovered_errors_per_hour(&self, mbytes: f64) -> f64 {
        self.errors_per_hour(mbytes) * (1.0 - self.ecc_coverage)
    }

    /// Mean time between uncovered errors, in days.
    pub fn mtbe_days(&self, mbytes: f64) -> f64 {
        1.0 / self.uncovered_errors_per_hour(mbytes) / 24.0
    }

    /// Expected uncovered errors over an interval of days.
    pub fn expected_errors(&self, mbytes: f64, days: f64) -> f64 {
        self.uncovered_errors_per_hour(mbytes) * days * 24.0
    }
}

/// Combine a hardware error-arrival model with measured fault-sensitivity
/// (the campaign's error rate) to estimate how often a given application
/// run is actually corrupted — the end-to-end question of §7.
pub fn application_corruptions_per_run(
    model: &SerModel,
    resident_mbytes: f64,
    run_hours: f64,
    manifestation_rate: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&manifestation_rate));
    model.uncovered_errors_per_hour(resident_mbytes) * run_hours * manifestation_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gb_at_500_fit_is_an_error_every_ten_days() {
        // §2.1: "even using a conservative soft error rate (500 FIT/Mb),
        // a system with 1 GB of RAM can expect a soft error every 10
        // days."
        let m = SerModel::conservative_no_ecc();
        let days = m.mtbe_days(1024.0);
        assert!(
            (days - 10.17).abs() < 0.1,
            "1 GB @ 500 FIT/Mb gives MTBE {days:.2} days"
        );
    }

    #[test]
    fn asci_q_extrapolation() {
        // §2: 33 TB of ECC memory, one error per 10 days per GB, 95 %
        // coverage -> "33,000 x 0.05 or roughly 1,650 errors every ten
        // days."
        // Model it directly: rate such that 1 GB sees 1 raw error per 10
        // days, scaled to 33,000 GB with 5 % escaping.
        let per_gb_per_10days = 1.0f64;
        let raw_in_10_days = 33_000.0 * per_gb_per_10days;
        let uncovered = raw_in_10_days * 0.05;
        assert!((uncovered - 1650.0).abs() < 1.0);

        // And through SerModel: choose FIT so 1 GB has MTBE 10 days.
        let fit = FIT_HOURS / (10.0 * 24.0 * 1024.0 * 8.0);
        let m = SerModel {
            fit_per_mbit: fit,
            ecc_coverage: 0.95,
        };
        let errors = m.expected_errors(33_000.0 * 1024.0, 10.0);
        assert!((errors - 1650.0).abs() < 20.0, "got {errors:.0}");
    }

    #[test]
    fn typical_fit_band() {
        // §2.1 (Tezzaron): 1000-5000 FIT/Mb is typical for modern
        // devices; at 1000 FIT a 1 GB system errors every ~5 days.
        let m = SerModel {
            fit_per_mbit: 1000.0,
            ecc_coverage: 0.0,
        };
        let days = m.mtbe_days(1024.0);
        assert!(days > 4.0 && days < 6.0, "{days}");
    }

    #[test]
    fn ecc_scales_linearly() {
        let no_ecc = SerModel {
            fit_per_mbit: 2000.0,
            ecc_coverage: 0.0,
        };
        let ecc = SerModel {
            fit_per_mbit: 2000.0,
            ecc_coverage: 0.9,
        };
        let a = no_ecc.uncovered_errors_per_hour(512.0);
        let b = ecc.uncovered_errors_per_hour(512.0);
        assert!((a * 0.1 - b).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_corruption_estimate() {
        // A 512 MB/process application running 5 hours under the
        // conservative model, with a 30 % measured manifestation rate.
        let m = SerModel::conservative_no_ecc();
        let c = application_corruptions_per_run(&m, 512.0, 5.0, 0.30);
        assert!(c > 0.0 && c < 1.0, "{c}");
        // Monotone in every argument.
        assert!(application_corruptions_per_run(&m, 1024.0, 5.0, 0.30) > c);
        assert!(application_corruptions_per_run(&m, 512.0, 10.0, 0.30) > c);
        assert!(application_corruptions_per_run(&m, 512.0, 5.0, 0.60) > c);
    }
}
