//! Sampling theory for fault-injection campaigns (§4.3 of the paper).
//!
//! The fault space has three axes — bit target, MPI process, injection
//! time — and is far too large to enumerate (≥ 3.9 × 10⁶ points even for
//! registers alone), so experiments draw a random sample and estimate the
//! population proportion of each error-manifestation class. The paper
//! sizes its samples with the classic normal-approximation bound
//!
//! ```text
//! n ≥ P(1 − P) (z_{α/2} / d)²
//! ```
//!
//! and *oversamples* by taking P = 0.5, giving `n ≥ 0.25 (z/d)²`. With
//! 400–500 injections per region at 95 % confidence, the estimation error
//! d is 4.4–4.9 % — the numbers quoted at the end of §4.3.

/// Inverse standard-normal CDF (Acklam's rational approximation, good to
/// ~1.15e-9 absolute error — far below the sampling error it feeds).
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, kept verbatim
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// The double-tailed α-point `z_{α/2}` for a given confidence level
/// (e.g. 0.95 → 1.96).
pub fn z_value(confidence: f64) -> f64 {
    assert!(confidence > 0.0 && confidence < 1.0);
    let alpha = 1.0 - confidence;
    inverse_normal_cdf(1.0 - alpha / 2.0)
}

/// Minimum sample size for estimation error `d` at the given confidence,
/// with the paper's oversampling (P = 0.5). Equation (2) of §4.3.
pub fn sample_size(confidence: f64, d: f64) -> u32 {
    assert!(d > 0.0 && d < 1.0);
    let z = z_value(confidence);
    (0.25 * (z / d).powi(2)).ceil() as u32
}

/// Estimation error `d` achieved by `n` samples at the given confidence
/// (the inversion the paper applies to its 400–500-injection campaigns).
pub fn estimation_error(confidence: f64, n: u32) -> f64 {
    assert!(n > 0);
    let z = z_value(confidence);
    z * (0.25 / n as f64).sqrt()
}

/// A (1−α) Wald confidence interval for an observed proportion `p` from
/// `n` samples, clamped to [0, 1].
pub fn confidence_interval(confidence: f64, p: f64, n: u32) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&p));
    assert!(n > 0);
    let z = z_value(confidence);
    let half = z * (p * (1.0 - p) / n as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_tables() {
        assert!((z_value(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_value(0.99) - 2.575829).abs() < 1e-4);
        assert!((z_value(0.90) - 1.644854).abs() < 1e-4);
    }

    #[test]
    fn inverse_cdf_symmetry_and_median() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-12);
        for p in [0.01, 0.1, 0.25, 0.4] {
            assert!(
                (inverse_normal_cdf(p) + inverse_normal_cdf(1.0 - p)).abs() < 1e-8,
                "asymmetry at {p}"
            );
        }
        // Known quantile: Φ⁻¹(0.975) = 1.95996...
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
    }

    #[test]
    fn paper_quoted_errors_reproduce() {
        // §4.3: "we performed 400-500 injections in most regions. With a
        // confidence interval of 95 percent ... the estimation error d is
        // 4.4-4.9 percent."
        let d500 = estimation_error(0.95, 500);
        let d400 = estimation_error(0.95, 400);
        assert!(
            (d500 * 100.0 - 4.4).abs() < 0.1,
            "d(500) = {:.2}%",
            d500 * 100.0
        );
        assert!(
            (d400 * 100.0 - 4.9).abs() < 0.1,
            "d(400) = {:.2}%",
            d400 * 100.0
        );
    }

    #[test]
    fn sample_size_inverts_error() {
        for &d in &[0.01, 0.044, 0.05, 0.1] {
            let n = sample_size(0.95, d);
            assert!(estimation_error(0.95, n) <= d + 1e-12);
            if n > 1 {
                assert!(estimation_error(0.95, n - 1) > d);
            }
        }
        // The classic n = 385 for ±5 % at 95 %.
        assert_eq!(sample_size(0.95, 0.05), 385);
    }

    #[test]
    fn sample_size_independent_of_population() {
        // The formula has no N term — the paper remarks on this.
        // (Nothing to vary here beyond checking monotonicity in d.)
        assert!(sample_size(0.95, 0.01) > sample_size(0.95, 0.05));
        assert!(sample_size(0.99, 0.05) > sample_size(0.95, 0.05));
    }

    #[test]
    fn wald_interval_behaviour() {
        let (lo, hi) = confidence_interval(0.95, 0.5, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert!((hi - lo - 2.0 * 1.96 * 0.05).abs() < 1e-3);
        let (lo, _) = confidence_interval(0.95, 0.0, 10);
        assert_eq!(lo, 0.0);
        let (_, hi) = confidence_interval(0.95, 1.0, 10);
        assert_eq!(hi, 1.0);
    }
}
