//! Detection-coverage campaigns: the same fault, with and without the
//! guard.
//!
//! The paper's §6 verdict is that MPI-level error handlers catch almost
//! nothing that matters; its closing argument is that message-level
//! detection plus checkpoint/recovery would. This module measures that
//! claim inside the lab: every trial draws one fault from the §4.3
//! space, runs it **twice from the identical seed** — once bare, once
//! under [`fl_guard::run_guarded`] — and records the outcome pair. The
//! per-class [`TransitionMatrix`] then shows exactly which baseline
//! manifestations (Crash, Hang, Incorrect, …) the guard converted into
//! `Recovered` or `DetectedByGuard`, and which slipped through.
//!
//! Both runs consume the same RNG draw before any world exists
//! (`campaign::draw_fault`), so the comparison is paired at the
//! trial level, not just distributional.

use crate::campaign::{
    build_epochs, draw_fault, run_trial_inner, trial_budget, trial_seed, trial_world_config,
    CampaignConfig, Dictionaries,
};
use crate::engine::{run_pool, EngineControl, EngineSink, NullSink};
use crate::outcome::Manifestation;
use crate::outcome::Tally;
use crate::progress::EngineProgress;
use crate::target::TargetClass;
use fl_apps::{App, AppKind, Golden};
use fl_guard::{run_guarded, GuardPolicy, GuardReport};
use fl_mpi::WorldExit;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One paired trial: the identical fault, bare and guarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedTrialRecord {
    /// Target class.
    pub class: TargetClass,
    /// Human-readable fault point (same draw in both runs).
    pub detail: String,
    /// Outcome of the unguarded run.
    pub baseline: Manifestation,
    /// Outcome of the guarded run.
    pub guarded: Manifestation,
    /// Failures the guard caught during the guarded run.
    pub detections: u32,
    /// Rollback-and-re-execute cycles the guarded run performed.
    pub restarts: u32,
    /// CRC-triggered redeliveries in the final guarded world.
    pub retransmits: u32,
}

impl GuardedTrialRecord {
    /// True when the guard turned a baseline error into a detection or a
    /// recovery — the coverage numerator.
    pub fn converted(&self) -> bool {
        self.baseline.is_error()
            && matches!(
                self.guarded,
                Manifestation::Recovered | Manifestation::DetectedByGuard
            )
    }
}

/// Baseline-outcome × guarded-outcome counts for one class, indexed as
/// [`Manifestation::ALL`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionMatrix {
    counts: [[u32; 12]; 12],
}

impl TransitionMatrix {
    fn idx(m: Manifestation) -> usize {
        Manifestation::ALL.iter().position(|&x| x == m).unwrap()
    }

    /// Record one paired outcome.
    pub fn record(&mut self, baseline: Manifestation, guarded: Manifestation) {
        self.counts[Self::idx(baseline)][Self::idx(guarded)] += 1;
    }

    /// Trials with this exact baseline → guarded pair.
    pub fn count(&self, baseline: Manifestation, guarded: Manifestation) -> u32 {
        self.counts[Self::idx(baseline)][Self::idx(guarded)]
    }

    /// Non-empty rows as `(baseline, guarded, count)` triples, in
    /// [`Manifestation::ALL`] order.
    pub fn entries(&self) -> Vec<(Manifestation, Manifestation, u32)> {
        let mut out = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &n) in row.iter().enumerate() {
                if n > 0 {
                    out.push((Manifestation::ALL[i], Manifestation::ALL[j], n));
                }
            }
        }
        out
    }
}

/// One class's paired results.
#[derive(Debug, Clone)]
pub struct CoverageClassResult {
    /// The injected class.
    pub class: TargetClass,
    /// Outcome counts of the unguarded runs.
    pub baseline: Tally,
    /// Outcome counts of the guarded runs.
    pub guarded: Tally,
    /// The full baseline → guarded outcome matrix.
    pub transitions: TransitionMatrix,
    /// Per-trial pairs, in trial order.
    pub trials: Vec<GuardedTrialRecord>,
}

impl CoverageClassResult {
    /// Baseline errors the guard converted to detection or recovery.
    pub fn converted(&self) -> u32 {
        self.trials.iter().filter(|t| t.converted()).count() as u32
    }

    /// Detection coverage: converted / baseline errors, in percent.
    pub fn coverage_percent(&self) -> f64 {
        let e = self.baseline.errors();
        if e == 0 {
            return 0.0;
        }
        100.0 * self.converted() as f64 / e as f64
    }
}

/// A full detection-coverage campaign for one application.
#[derive(Debug, Clone)]
pub struct CoverageResult {
    /// Which application.
    pub app: AppKind,
    /// The guard configuration every guarded run used.
    pub policy: GuardPolicy,
    /// One entry per requested class, in request order.
    pub classes: Vec<CoverageClassResult>,
    /// The fault-free reference run.
    pub golden: Golden,
}

impl CoverageResult {
    /// The result row for a class, if it was part of the campaign.
    pub fn class(&self, c: TargetClass) -> Option<&CoverageClassResult> {
        self.classes.iter().find(|r| r.class == c)
    }

    /// Baseline errors across all classes.
    pub fn baseline_errors(&self) -> u32 {
        self.classes.iter().map(|c| c.baseline.errors()).sum()
    }

    /// Converted trials across all classes.
    pub fn converted(&self) -> u32 {
        self.classes.iter().map(|c| c.converted()).sum()
    }
}

/// Machine-readable manifestation slug (JSONL field values) — now a
/// thin alias for [`Manifestation::slug`], kept for the module-local
/// call sites.
pub(crate) fn slug(m: Manifestation) -> &'static str {
    m.slug()
}

/// Run one fault under the guard and classify the pair-able outcome.
///
/// The fault is drawn from `trial_seed` exactly as the unguarded
/// [`crate::run_trial`] path draws it, then armed on a world running
/// under `policy`. Classification extends §5.1 with the guarded classes:
/// a clean finish with matching output is `Correct` if the guard never
/// intervened and `Recovered` if it did; a clean finish with wrong
/// output is still `Incorrect` (the guard cannot see silent data
/// corruption); any non-clean final exit — the restart budget ran out —
/// is `DetectedByGuard`.
#[allow(clippy::too_many_arguments)]
pub fn run_guarded_trial(
    app: &App,
    golden: &Golden,
    dicts: &Dictionaries,
    class: TargetClass,
    trial_seed: u64,
    budget: u64,
    policy: &GuardPolicy,
    fastpath: bool,
) -> (Manifestation, GuardReport) {
    let drawn = draw_fault(golden, dicts, class, trial_seed, app.params.nranks);
    let mut cfg = trial_world_config(app, budget, 0, fastpath);
    cfg.seed = trial_seed; // vary moldyn's schedule per trial (§4.2.2)
    let (world, report) = run_guarded(&app.image, cfg, policy, |w| drawn.arm(w));
    let outcome = match &report.exit {
        WorldExit::Clean => {
            if app.comparable_output(&world) == golden.output {
                if report.intervened() {
                    Manifestation::Recovered
                } else {
                    Manifestation::Correct
                }
            } else {
                Manifestation::Incorrect
            }
        }
        _ => Manifestation::DetectedByGuard,
    };
    (outcome, report)
}

/// Coverage-campaign execution (the
/// [`crate::CampaignBuilder::run_coverage`] backend). Baseline runs may
/// fork from epoch checkpoints (observably identical, per the campaign
/// invariant); guarded runs always start cold — their checkpoints belong
/// to the guarded world itself.
pub(crate) fn run_coverage_impl(
    app: &App,
    classes: &[TargetClass],
    cfg: &CampaignConfig,
    policy: &GuardPolicy,
) -> CoverageResult {
    run_coverage_engine(app, classes, cfg, policy, &NullSink, &EngineControl::new())
        .expect("uncontrolled coverage runs always complete")
}

/// Coverage campaign on the shared engine pool: work stealing across
/// classes, pause/stop via `control`, progress through `sink`. Returns
/// `None` when stopped before every paired trial completed.
pub fn run_coverage_engine(
    app: &App,
    classes: &[TargetClass],
    cfg: &CampaignConfig,
    policy: &GuardPolicy,
    sink: &dyn EngineSink,
    control: &EngineControl,
) -> Option<CoverageResult> {
    let golden = app.golden(2_000_000_000);
    let budget = trial_budget(&golden, cfg);
    let dicts = Dictionaries::build(app);
    let code = cfg.fastpath.then(|| app.image.pre_decode());
    let epochs = build_epochs(app, cfg, budget, code.as_ref());

    let total = classes.len() as u64 * cfg.injections as u64;
    let done = AtomicU64::new(0);
    let started = std::time::Instant::now();
    let counts = vec![cfg.injections; classes.len()];
    let (slots, complete) = run_pool(&counts, cfg.threads, control, |ci, k| {
        let class = classes[ci];
        let seed = trial_seed(cfg.seed, ci, k);
        let base = run_trial_inner(
            app,
            &golden,
            &dicts,
            class,
            seed,
            budget,
            epochs.as_ref(),
            0,
            cfg.fastpath,
            code.as_ref(),
        )
        .record;
        let (guarded, report) = run_guarded_trial(
            app,
            &golden,
            &dicts,
            class,
            seed,
            budget,
            policy,
            cfg.fastpath,
        );
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        sink.progress(EngineProgress {
            total,
            done: d,
            resumed: 0,
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        GuardedTrialRecord {
            class,
            detail: base.detail,
            baseline: base.outcome,
            guarded,
            detections: report.detections,
            restarts: report.restarts,
            retransmits: report.retransmits,
        }
    });
    if !complete {
        return None;
    }

    let mut results = Vec::new();
    for (ci, class_slots) in slots.into_iter().enumerate() {
        let trials: Vec<GuardedTrialRecord> = class_slots
            .into_iter()
            .map(|r| r.expect("every trial slot filled"))
            .collect();
        let mut baseline = Tally::default();
        let mut guarded = Tally::default();
        let mut transitions = TransitionMatrix::default();
        for t in &trials {
            baseline.record(t.baseline);
            guarded.record(t.guarded);
            transitions.record(t.baseline, t.guarded);
        }
        results.push(CoverageClassResult {
            class: classes[ci],
            baseline,
            guarded,
            transitions,
            trials,
        });
    }
    Some(CoverageResult {
        app: app.kind,
        policy: *policy,
        classes: results,
        golden,
    })
}

/// Render a coverage campaign as a text table: baseline error breakdown
/// against guarded outcomes, one row per class, plus the non-empty
/// outcome transitions.
pub fn render_coverage(r: &CoverageResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "guard: {} retransmits, {} restarts, checkpoint every {} rounds",
        r.policy.max_retransmits, r.policy.max_restarts, r.policy.checkpoint_rounds
    );
    let _ = writeln!(
        out,
        "{:<14} {:>6} | {:>8} {:>5} {:>4} {:>5} | {:>7} {:>5} {:>5} | {:>9}",
        "Region",
        "Trials",
        "BaseErr",
        "Crash",
        "Hang",
        "Incor",
        "Recov",
        "GDet",
        "Incor",
        "Cover(%)"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for c in &r.classes {
        let _ = writeln!(
            out,
            "{:<14} {:>6} | {:>8} {:>5} {:>4} {:>5} | {:>7} {:>5} {:>5} | {:>9.1}",
            c.class.label(),
            c.baseline.executions,
            c.baseline.errors(),
            c.baseline.count(Manifestation::Crash),
            c.baseline.count(Manifestation::Hang),
            c.baseline.count(Manifestation::Incorrect),
            c.guarded.count(Manifestation::Recovered),
            c.guarded.count(Manifestation::DetectedByGuard),
            c.guarded.count(Manifestation::Incorrect),
            c.coverage_percent(),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(92));
    let _ = writeln!(
        out,
        "overall: {} of {} baseline errors converted to Recovered/Guard Detected",
        r.converted(),
        r.baseline_errors()
    );
    out.push('\n');
    let _ = writeln!(out, "Outcome transitions (baseline -> guarded):");
    for c in &r.classes {
        for (from, to, n) in c.transitions.entries() {
            let _ = writeln!(out, "  {:<14} {from} -> {to}: {n}", c.class.label());
        }
    }
    out
}

/// Render a coverage campaign as TSV: one row per class with full
/// baseline and guarded outcome counts.
pub fn render_coverage_tsv(r: &CoverageResult) -> String {
    let mut out = String::from("region\ttrials");
    for m in Manifestation::ALL {
        let _ = write!(out, "\tbase_{}", slug(m));
    }
    for m in Manifestation::ALL {
        let _ = write!(out, "\tguard_{}", slug(m));
    }
    out.push_str("\tconverted\tcoverage_pct\n");
    for c in &r.classes {
        let _ = write!(out, "{}\t{}", c.class.label(), c.baseline.executions);
        for m in Manifestation::ALL {
            let _ = write!(out, "\t{}", c.baseline.count(m));
        }
        for m in Manifestation::ALL {
            let _ = write!(out, "\t{}", c.guarded.count(m));
        }
        let _ = writeln!(out, "\t{}\t{:.2}", c.converted(), c.coverage_percent());
    }
    out
}

/// Serialize a coverage campaign as JSONL: one object per trial, in
/// campaign order, carrying the paired outcomes and the guard's
/// intervention counters.
pub fn coverage_jsonl(r: &CoverageResult) -> String {
    let mut out = String::new();
    for c in &r.classes {
        for (k, t) in c.trials.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"app\":\"{}\",\"class\":\"{}\",\"trial\":{k},\"detail\":\"{}\",\"baseline\":\"{}\",\"guarded\":\"{}\",\"detections\":{},\"restarts\":{},\"retransmits\":{},\"converted\":{}}}",
                r.app.name(),
                c.class.name(),
                t.detail,
                slug(t.baseline),
                slug(t.guarded),
                t.detections,
                t.restarts,
                t.retransmits,
                t.converted(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::AppParams;

    fn coverage(
        kind: AppKind,
        classes: &[TargetClass],
        n: u32,
        seed: u64,
        policy: &GuardPolicy,
    ) -> CoverageResult {
        let app = App::build(kind, AppParams::tiny(kind));
        run_coverage_impl(
            &app,
            classes,
            &CampaignConfig {
                injections: n,
                seed,
                ..Default::default()
            },
            policy,
        )
    }

    #[test]
    fn message_faults_are_covered_by_the_crc_guard() {
        // The acceptance bar: on wavetoy message faults, a nonzero
        // fraction of baseline Crash/Hang/Incorrect must convert to
        // Detected/Recovered under the guard.
        let policy = GuardPolicy {
            checkpoint_rounds: 16,
            ..GuardPolicy::default()
        };
        let r = coverage(
            AppKind::Wavetoy,
            &[TargetClass::Message],
            24,
            0xC0FE,
            &policy,
        );
        let c = &r.classes[0];
        assert!(
            c.baseline.errors() > 0,
            "no baseline message fault manifested"
        );
        assert!(
            c.converted() > 0,
            "guard converted nothing: {:?}",
            c.transitions.entries()
        );
        assert!(c.coverage_percent() > 0.0);
        // And converted trials actually show guard work.
        assert!(c
            .trials
            .iter()
            .filter(|t| t.converted())
            .all(|t| t.detections > 0 || t.retransmits > 0));
    }

    #[test]
    fn register_crashes_are_recovered_by_rollback() {
        let policy = GuardPolicy {
            checkpoint_rounds: 16,
            ..GuardPolicy::default()
        };
        let r = coverage(
            AppKind::Wavetoy,
            &[TargetClass::RegularReg],
            20,
            0xD1E,
            &policy,
        );
        let c = &r.classes[0];
        let crash_to_recovered = c
            .transitions
            .count(Manifestation::Crash, Manifestation::Recovered);
        let crash_to_detected = c
            .transitions
            .count(Manifestation::Crash, Manifestation::DetectedByGuard);
        assert!(
            crash_to_recovered + crash_to_detected > 0,
            "no baseline crash was caught: {:?}",
            c.transitions.entries()
        );
    }

    #[test]
    fn guarded_trials_are_fastpath_invariant() {
        // Guard restarts roll the world back to a checkpoint and
        // re-execute — exactly the snapshot-restore boundary where a
        // stale TLB entry would diverge. Every paired outcome and every
        // intervention counter must match with the fast path off.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let golden = app.golden(2_000_000_000);
        let budget = trial_budget(&golden, &CampaignConfig::default());
        let dicts = Dictionaries::build(&app);
        let policy = GuardPolicy {
            checkpoint_rounds: 16,
            ..GuardPolicy::default()
        };
        for class in [TargetClass::Message, TargetClass::RegularReg] {
            for k in 0..4 {
                let seed = trial_seed(0x60AD, 0, k);
                let (fast, fr) =
                    run_guarded_trial(&app, &golden, &dicts, class, seed, budget, &policy, true);
                let (slow, sr) =
                    run_guarded_trial(&app, &golden, &dicts, class, seed, budget, &policy, false);
                assert_eq!(fast, slow, "{class:?} trial {k}: outcome diverged");
                assert_eq!(
                    (fr.detections, fr.restarts, fr.retransmits, fr.exit),
                    (sr.detections, sr.restarts, sr.retransmits, sr.exit),
                    "{class:?} trial {k}: guard report diverged"
                );
            }
        }
    }

    #[test]
    fn coverage_campaigns_are_reproducible() {
        let policy = GuardPolicy::default();
        let a = coverage(AppKind::Wavetoy, &[TargetClass::Message], 8, 7, &policy);
        let b = coverage(AppKind::Wavetoy, &[TargetClass::Message], 8, 7, &policy);
        assert_eq!(a.classes[0].trials, b.classes[0].trials);
    }

    #[test]
    fn baseline_half_matches_unguarded_campaign() {
        // The paired baseline must be the exact campaign the unguarded
        // path runs: same seeds, same draws, same outcomes.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let cfg = CampaignConfig {
            injections: 8,
            seed: 31,
            ..Default::default()
        };
        let plain = crate::campaign::run_campaign_impl(&app, &[TargetClass::Message], &cfg);
        let paired =
            run_coverage_impl(&app, &[TargetClass::Message], &cfg, &GuardPolicy::default());
        for (p, g) in plain.classes[0]
            .trials
            .iter()
            .zip(&paired.classes[0].trials)
        {
            assert_eq!(p.detail, g.detail);
            assert_eq!(p.outcome, g.baseline);
        }
    }

    #[test]
    fn renderers_cover_every_class_row() {
        let r = coverage(
            AppKind::Wavetoy,
            &[TargetClass::Message, TargetClass::RegularReg],
            6,
            3,
            &GuardPolicy::default(),
        );
        let table = render_coverage(&r, "coverage demo");
        assert!(table.contains("Message"));
        assert!(table.contains("Regular Reg."));
        assert!(table.contains("overall:"));
        let tsv = render_coverage_tsv(&r);
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("region\ttrials\tbase_correct"));
        let jsonl = coverage_jsonl(&r);
        assert_eq!(jsonl.lines().count(), 12);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
