//! The fluent campaign API — a thin veneer over [`CampaignSpec`] +
//! [`crate::run_spec`].
//!
//! [`CampaignBuilder`] is the single front door for configuring and
//! running injection campaigns: application, region set, fault duration
//! model, trial count, seeding, epoch forking, event recording and
//! guarded execution all hang off one builder instead of a positional
//! struct literal. It holds no execution logic of its own: every
//! `run*` call lowers the configuration to a [`CampaignSpec`] and hands
//! it to [`crate::run_spec`], the same entry point the CLI verbs and
//! the campaign service use — builder-run and spec-run campaigns are
//! byte-identical by construction. Only configurations the spec cannot
//! express (custom [`fl_apps::AppParams`], non-transient fault models)
//! fall back to direct engine calls.
//!
//! ```
//! use fl_apps::{App, AppKind, AppParams};
//! use fl_inject::{CampaignBuilder, TargetClass};
//!
//! let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
//! let result = CampaignBuilder::new(&app)
//!     .classes(&[TargetClass::RegularReg])
//!     .injections(10)
//!     .seed(7)
//!     .run();
//! assert_eq!(result.classes[0].tally.executions, 10);
//! ```

use crate::campaign::{
    replay_trial_impl, run_campaign_impl, trial_seed, CampaignConfig, CampaignResult, ClassResult,
    TrialRecord,
};
use crate::chaos::{run_chaos_impl, ChaosPolicy, ChaosResult};
use crate::engine::{run_spec, EngineControl, NullSink, SpecOutcome};
use crate::faultmodel::{model_classes, run_model_trial, FaultModel};
use crate::ft::{run_ft_impl, FtResult};
use crate::guarded::{run_coverage_impl, CoverageResult};
use crate::obs::TrialTrace;
use crate::outcome::Tally;
use crate::perturb::{run_perturb_impl, PerturbPolicy, PerturbResult};
use crate::spec::{CampaignSpec, SpecMode};
use crate::target::TargetClass;
use fl_apps::{App, AppParams};
use fl_ft::FtPolicy;
use fl_guard::GuardPolicy;

/// Fluent configuration for one injection campaign.
///
/// Defaults mirror [`CampaignConfig::default`]: 500 injections per
/// class, all eight target classes, the transient fault model, epoch
/// forking every 16 rounds, event recording off.
#[derive(Clone)]
pub struct CampaignBuilder<'a> {
    app: &'a App,
    classes: Vec<TargetClass>,
    cfg: CampaignConfig,
    model: FaultModel,
    guard: Option<GuardPolicy>,
    ft: Option<FtPolicy>,
    chaos: Option<ChaosPolicy>,
    perturb: Option<PerturbPolicy>,
}

impl<'a> CampaignBuilder<'a> {
    /// Start configuring a campaign against `app`.
    pub fn new(app: &'a App) -> CampaignBuilder<'a> {
        CampaignBuilder {
            app,
            classes: TargetClass::ALL.to_vec(),
            cfg: CampaignConfig::default(),
            model: FaultModel::Transient,
            guard: None,
            ft: None,
            chaos: None,
            perturb: None,
        }
    }

    /// Replace the target-class set (request order = result order).
    pub fn classes(mut self, classes: &[TargetClass]) -> Self {
        self.classes = classes.to_vec();
        self
    }

    /// Injections per target class.
    pub fn injections(mut self, n: u32) -> Self {
        self.cfg.injections = n;
        self
    }

    /// Master campaign seed (trials derive from it reproducibly).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Hang bound as a multiple of the longest golden rank.
    pub fn budget_factor(mut self, f: f64) -> Self {
        self.cfg.budget_factor = f;
        self
    }

    /// Worker threads (0 = all available).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Checkpoint cadence for snapshot-forked trials (0 = always cold).
    pub fn epoch_rounds(mut self, rounds: u32) -> Self {
        self.cfg.epoch_rounds = rounds;
        self
    }

    /// Enable structured event recording with the given per-rank ring
    /// capacity; the campaign result then carries
    /// [`crate::CampaignMetrics`]. 0 turns recording back off.
    pub fn observe(mut self, ring_capacity: u32) -> Self {
        self.cfg.obs_capacity = ring_capacity;
        self
    }

    /// Enable or disable the execution fast path (software TLB +
    /// basic-block dispatch) for every trial machine. On by default;
    /// turning it off is observably identical but much slower — useful
    /// for benchmarking the fast path and for divergence hunting.
    pub fn fastpath(mut self, on: bool) -> Self {
        self.cfg.fastpath = on;
        self
    }

    /// Fault duration model (default transient). Non-transient models
    /// support the register and static-memory classes only; see
    /// [`model_classes`].
    pub fn fault_model(mut self, model: FaultModel) -> Self {
        self.model = model;
        self
    }

    /// Set the guard policy for [`CampaignBuilder::run_coverage`]
    /// (defaults to [`GuardPolicy::default`] if never called).
    pub fn guarded(mut self, policy: GuardPolicy) -> Self {
        self.guard = Some(policy);
        self
    }

    /// Set the recovery policy for [`CampaignBuilder::run_ft`]
    /// (defaults to [`FtPolicy::default`] if never called).
    pub fn ft(mut self, policy: FtPolicy) -> Self {
        self.ft = Some(policy);
        self
    }

    /// Set the scenario-diversity policy for
    /// [`CampaignBuilder::run_chaos`] (defaults to
    /// [`ChaosPolicy::default`] if never called).
    pub fn chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Some(policy);
        self
    }

    /// Set the performance-interference policy for
    /// [`CampaignBuilder::run_perturb`] (defaults to
    /// [`PerturbPolicy::default`] if never called).
    pub fn perturb(mut self, policy: PerturbPolicy) -> Self {
        self.perturb = Some(policy);
        self
    }

    /// Adopt a whole [`CampaignConfig`] (e.g. from a parsed experiment
    /// spec), replacing every parameter set so far except the class
    /// list and fault model.
    pub fn with_config(mut self, cfg: CampaignConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The campaign parameters as currently configured.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// The configured class list.
    pub fn class_list(&self) -> &[TargetClass] {
        &self.classes
    }

    /// Is the wrapped app one of the two canonical parameterizations a
    /// [`CampaignSpec`] can name? `Some(tiny)` if so.
    fn canonical_tiny(&self) -> Option<bool> {
        let kind = self.app.kind;
        if self.app.params == AppParams::tiny(kind) {
            Some(true)
        } else if self.app.params == AppParams::default_for(kind) {
            Some(false)
        } else {
            None
        }
    }

    /// Lower the builder to a [`CampaignSpec`] running in `mode`.
    /// `None` when the configuration is outside the spec language:
    /// custom app parameters (a spec names apps by kind + `tiny` only)
    /// or a non-transient fault model.
    fn lower(&self, mode: SpecMode) -> Option<CampaignSpec> {
        if self.model != FaultModel::Transient {
            return None;
        }
        Some(CampaignSpec {
            app: self.app.kind,
            tiny: self.canonical_tiny()?,
            classes: self.classes.clone(),
            campaign: self.cfg,
            mode,
        })
    }

    /// The builder's configuration as a plain-campaign [`CampaignSpec`]
    /// — the document `faultlab submit` would accept to run the same
    /// campaign on a service. `None` for configurations the spec cannot
    /// express (custom app parameters, non-transient fault models).
    pub fn to_spec(&self) -> Option<CampaignSpec> {
        self.lower(SpecMode::Campaign)
    }

    /// Run the lowered spec on the engine; uncontrolled one-shot runs
    /// always complete.
    fn run_lowered(spec: &CampaignSpec) -> SpecOutcome {
        run_spec(spec, &NullSink, &EngineControl::new(), None)
            .expect("uncontrolled one-shot runs always complete")
    }

    /// Run the campaign by lowering to [`CampaignSpec`] + `run_spec`.
    ///
    /// # Panics
    /// With a non-transient fault model, panics if the class list
    /// contains a class outside [`model_classes`] (dynamic targets
    /// cannot be re-asserted periodically).
    pub fn run(self) -> CampaignResult {
        if let Some(spec) = self.lower(SpecMode::Campaign) {
            let SpecOutcome::Campaign(r) = Self::run_lowered(&spec) else {
                unreachable!("campaign mode yields a campaign outcome");
            };
            return r;
        }
        if self.model == FaultModel::Transient {
            // Custom app parameters: same engine, direct app reference.
            return run_campaign_impl(self.app, &self.classes, &self.cfg);
        }
        self.run_model_campaign()
    }

    /// Run a detection-coverage campaign: every trial's fault executed
    /// both unguarded and under the configured [`GuardPolicy`] (see
    /// [`CampaignBuilder::guarded`]), with paired outcomes and the
    /// baseline→guarded transition matrix. Transient model only.
    pub fn run_coverage(self) -> CoverageResult {
        assert!(
            self.model == FaultModel::Transient,
            "coverage campaigns support the transient model only"
        );
        let policy = self.guard.unwrap_or_default();
        if let Some(spec) = self.lower(SpecMode::Guard(policy)) {
            let SpecOutcome::Coverage(r) = Self::run_lowered(&spec) else {
                unreachable!("guard mode yields a coverage outcome");
            };
            return r;
        }
        run_coverage_impl(self.app, &self.classes, &self.cfg, &policy)
    }

    /// Run a process-failure recovery campaign: `injections` rank kills
    /// each executed bare, under shrink recovery, under buddy-checkpoint
    /// respawn, and in app-owned fl-ulfm mode, plus `injections` §3.3
    /// message faults each executed bare and in a voted replica set (see
    /// [`CampaignBuilder::ft`]). Transient model only — process-level
    /// faults are the campaign's subject, not its knob.
    pub fn run_ft(self) -> FtResult {
        assert!(
            self.model == FaultModel::Transient,
            "ft campaigns support the transient model only"
        );
        let policy = self.ft.unwrap_or_default();
        if let Some(spec) = self.lower(SpecMode::Ft(policy)) {
            let SpecOutcome::Ft(r) = Self::run_lowered(&spec) else {
                unreachable!("ft mode yields an ft outcome");
            };
            return r;
        }
        run_ft_impl(
            self.app,
            &self.cfg,
            &policy,
            self.cfg.injections,
            self.cfg.injections,
        )
    }

    /// Run the chaos defense-coverage matrix: `injections` trials for
    /// each of the 9 × 6 chaos-model × defense cells, all defense
    /// columns replaying the byte-identical fault draw (see
    /// [`CampaignBuilder::chaos`]). Transient model only — the chaos
    /// models themselves are the matrix rows, not the builder's knob.
    pub fn run_chaos(self) -> ChaosResult {
        assert!(
            self.model == FaultModel::Transient,
            "chaos campaigns support the transient model only"
        );
        let policy = self.chaos.unwrap_or_default();
        if let Some(spec) = self.lower(SpecMode::Chaos(policy)) {
            let SpecOutcome::Chaos(r) = Self::run_lowered(&spec) else {
                unreachable!("chaos mode yields a chaos outcome");
            };
            return r;
        }
        run_chaos_impl(self.app, &self.cfg, &policy)
    }

    /// Run the performance-interference detector-comparison matrix:
    /// `injections` trials for each of the 5 × 3 perturb-model ×
    /// detection cells, all detection columns replaying the
    /// byte-identical fault draw (see [`CampaignBuilder::perturb`]).
    /// Transient model only — the perturb models themselves are the
    /// matrix rows, not the builder's knob.
    pub fn run_perturb(self) -> PerturbResult {
        assert!(
            self.model == FaultModel::Transient,
            "perturb campaigns support the transient model only"
        );
        let policy = self.perturb.unwrap_or_default();
        if let Some(spec) = self.lower(SpecMode::Perturb(policy)) {
            let SpecOutcome::Perturb(r) = Self::run_lowered(&spec) else {
                unreachable!("perturb mode yields a perturb outcome");
            };
            return r;
        }
        run_perturb_impl(self.app, &self.cfg, &policy)
    }

    /// Replay one recorded trial from its campaign coordinates (class
    /// position `ci`, trial index `k`). Transient model only.
    pub fn replay(self, ci: usize, k: u32) -> TrialRecord {
        self.replay_traced(ci, k).record
    }

    /// Replay one trial and return its full event trace. Streams are
    /// empty unless [`CampaignBuilder::observe`] was set. Transient
    /// model only.
    pub fn replay_traced(self, ci: usize, k: u32) -> TrialTrace {
        assert!(
            self.model == FaultModel::Transient,
            "trial replay supports the transient model only"
        );
        replay_trial_impl(self.app, &self.classes, &self.cfg, ci, k)
    }

    /// Campaign under a persistent fault model: every trial routes
    /// through [`run_model_trial`], always cold (persistent faults
    /// re-arm across the whole run, so epoch forking buys nothing).
    fn run_model_campaign(self) -> CampaignResult {
        let supported = model_classes();
        for c in &self.classes {
            assert!(
                supported.contains(c),
                "fault model {} does not support class {c} (supported: register and static memory)",
                self.model
            );
        }
        let golden = self.app.golden(2_000_000_000);
        let budget = (*golden.insns.iter().max().unwrap() as f64 * self.cfg.budget_factor) as u64
            + 2_000_000;
        let started = std::time::Instant::now();
        let mut results = Vec::new();
        for (ci, &class) in self.classes.iter().enumerate() {
            let mut tally = Tally::default();
            let mut trials = Vec::with_capacity(self.cfg.injections as usize);
            for k in 0..self.cfg.injections {
                let outcome = run_model_trial(
                    self.app,
                    &golden,
                    class,
                    self.model,
                    trial_seed(self.cfg.seed, ci, k),
                    budget,
                );
                tally.record(outcome);
                trials.push(TrialRecord {
                    class,
                    detail: format!("model {} trial {k}", self.model),
                    outcome,
                });
            }
            results.push(ClassResult {
                class,
                tally,
                trials,
            });
        }
        CampaignResult {
            app: self.app.kind,
            classes: results,
            golden,
            metrics: None,
            // Model trials tear their worlds down inside
            // `run_model_trial`; no counters survive to aggregate.
            insns_total: 0,
            wall_nanos: started.elapsed().as_nanos() as u64,
            exec_stats: fl_machine::ExecStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{AppKind, AppParams};

    fn tiny(kind: AppKind) -> App {
        App::build(kind, AppParams::tiny(kind))
    }

    #[test]
    fn builder_matches_backend() {
        let app = tiny(AppKind::Wavetoy);
        let via_builder = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(8)
            .seed(11)
            .run();
        let via_backend = crate::campaign::run_campaign_impl(
            &app,
            &[TargetClass::RegularReg],
            &CampaignConfig {
                injections: 8,
                seed: 11,
                ..Default::default()
            },
        );
        assert_eq!(
            via_builder.classes[0].trials, via_backend.classes[0].trials,
            "builder must drive the identical campaign as the backend"
        );
    }

    #[test]
    fn default_classes_are_all_eight() {
        let app = tiny(AppKind::Wavetoy);
        let b = CampaignBuilder::new(&app);
        assert_eq!(b.class_list(), &TargetClass::ALL);
        assert_eq!(b.config().injections, 500);
    }

    #[test]
    fn observe_enables_metrics() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(5)
            .seed(3)
            .observe(256)
            .run();
        let metrics = r.metrics.expect("observe(..) must produce metrics");
        assert_eq!(metrics.classes.len(), 1);
        let cm = &metrics.classes[0];
        assert_eq!(cm.trials, 5);
        assert!(cm.events_total > 0, "trials must record events");
        // Register faults always land (the flip fires unconditionally).
        assert_eq!(cm.landed, 5);
    }

    #[test]
    fn fastpath_off_campaign_is_bit_identical() {
        // The perf tentpole's correctness bar at campaign level: with
        // the TLB and block dispatch disabled, every trial — cold and
        // epoch-forked alike — must produce the same records, event
        // aggregates, and instruction counts.
        let app = tiny(AppKind::Wavetoy);
        let classes = [
            TargetClass::RegularReg,
            TargetClass::Stack,
            TargetClass::Message,
        ];
        let run = |on: bool| {
            CampaignBuilder::new(&app)
                .classes(&classes)
                .injections(8)
                .seed(0xFA57)
                .observe(512)
                .fastpath(on)
                .run()
        };
        let fast = run(true);
        let slow = run(false);
        for (f, s) in fast.classes.iter().zip(&slow.classes) {
            assert_eq!(f.trials, s.trials, "{:?}: fast path diverged", f.class);
            assert_eq!(f.tally, s.tally);
        }
        assert_eq!(fast.metrics, slow.metrics);
        assert_eq!(fast.insns_total, slow.insns_total);
        assert!(fast.insns_total > 0);
    }

    #[test]
    fn campaign_reports_throughput() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(4)
            .seed(2)
            .run();
        assert!(r.insns_total > 0);
        assert!(r.wall_nanos > 0);
        assert_eq!(r.trials_total(), 4);
        assert!(r.mips() > 0.0);
        assert!(r.trials_per_sec() > 0.0);
    }

    #[test]
    fn unobserved_run_has_no_metrics() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(2)
            .run();
        assert!(r.metrics.is_none());
    }

    #[test]
    fn model_campaign_runs_supported_classes() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(4)
            .seed(9)
            .fault_model(FaultModel::StuckAt1)
            .run();
        assert_eq!(r.classes[0].tally.executions, 4);
        assert!(r.classes[0].trials[0].detail.contains("stuck-at-1"));
    }

    #[test]
    fn chaos_builder_runs_the_matrix() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .injections(1)
            .seed(4)
            .chaos(ChaosPolicy::default())
            .run_chaos();
        assert_eq!(r.cells.len(), 9 * 6);
        assert!(r.cells.iter().all(|c| c.trials.len() == 1));
        assert!(r.insns_total > 0);
    }

    #[test]
    fn perturb_builder_runs_the_matrix() {
        let app = tiny(AppKind::Wavetoy);
        let r = CampaignBuilder::new(&app)
            .injections(1)
            .seed(4)
            .perturb(PerturbPolicy::default())
            .run_perturb();
        assert_eq!(r.cells.len(), 5 * 3);
        assert!(r.cells.iter().all(|c| c.trials.len() == 1));
        assert!(r.insns_total > 0 && r.ref_rounds > 0);
    }

    #[test]
    fn builder_lowers_to_the_canonical_spec() {
        let app = tiny(AppKind::Climsim);
        let spec = CampaignBuilder::new(&app)
            .classes(&[TargetClass::Message])
            .injections(9)
            .seed(0x5EC)
            .to_spec()
            .expect("tiny apps are spec-expressible");
        assert_eq!(spec.app, AppKind::Climsim);
        assert!(spec.tiny);
        assert_eq!(spec.classes, vec![TargetClass::Message]);
        assert_eq!(spec.campaign.injections, 9);
        assert_eq!(spec.campaign.seed, 0x5EC);
        // The lowering is the submit path: it must survive the wire.
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn custom_app_params_fall_back_to_the_direct_engine_path() {
        let kind = AppKind::Wavetoy;
        let mut params = AppParams::tiny(kind);
        params.steps += 1; // not tiny, not default: unexpressible
        let app = App::build(kind, params);
        let b = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .injections(4)
            .seed(6);
        assert!(b.to_spec().is_none());
        let r = b.run();
        assert_eq!(r.classes[0].tally.executions, 4);
    }

    #[test]
    fn non_transient_models_are_not_spec_expressible() {
        let app = tiny(AppKind::Wavetoy);
        let b = CampaignBuilder::new(&app)
            .classes(&[TargetClass::RegularReg])
            .fault_model(FaultModel::StuckAt1);
        assert!(b.to_spec().is_none());
    }

    #[test]
    #[should_panic(expected = "does not support class")]
    fn model_campaign_rejects_dynamic_classes() {
        let app = tiny(AppKind::Wavetoy);
        let _ = CampaignBuilder::new(&app)
            .classes(&[TargetClass::Heap])
            .fault_model(FaultModel::Held)
            .run();
    }
}
