//! Experiment configuration files.
//!
//! The paper's injector is driven by a configuration file parsed at
//! `MPI_Init` time (§3.1). FaultLab keeps the same workflow: a small
//! `key = value` format describing one campaign, so experiments are
//! reproducible artifacts rather than command lines.
//!
//! ```text
//! # moldyn register campaign
//! app           = moldyn
//! injections    = 400
//! regions       = regular-reg, fp-reg, message
//! seed          = 0xFA17
//! threads       = 0
//! budget_factor = 3.0
//! epoch_rounds  = 16
//! tiny          = false
//! ```

use crate::campaign::CampaignConfig;
use crate::target::TargetClass;
use fl_apps::AppKind;
use std::fmt;

/// A parsed experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Which application to inject into.
    pub app: AppKind,
    /// Target classes, in order.
    pub classes: Vec<TargetClass>,
    /// Campaign parameters.
    pub campaign: CampaignConfig,
    /// Use the fast tiny application parameters.
    pub tiny: bool,
}

/// Configuration-file errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// 1-based line number (0 for file-level errors).
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        line,
        msg: msg.into(),
    })
}

fn parse_u64(line: u32, v: &str) -> Result<u64, ConfigError> {
    let r = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    r.map_err(|_| ConfigError {
        line,
        msg: format!("expected a number, got `{v}`"),
    })
}

fn parse_region(line: u32, v: &str) -> Result<TargetClass, ConfigError> {
    if v == "all" {
        return err(line, "`all` must be the only region");
    }
    v.parse().map_err(|msg: String| ConfigError { line, msg })
}

/// Parse an experiment specification. Blank lines and `#` comments are
/// ignored; unknown keys are errors (typos must not silently change an
/// experiment).
pub fn parse_spec(text: &str) -> Result<ExperimentSpec, ConfigError> {
    let mut app = None;
    let mut classes: Option<Vec<TargetClass>> = None;
    let mut campaign = CampaignConfig::default();
    let mut tiny = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i as u32 + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let Some((key, value)) = body.split_once('=') else {
            return err(line, format!("expected `key = value`, got `{body}`"));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "app" => {
                app = Some(
                    value
                        .parse::<AppKind>()
                        .map_err(|msg| ConfigError { line, msg })?,
                )
            }
            "regions" => {
                if value == "all" {
                    classes = Some(TargetClass::ALL.to_vec());
                } else {
                    let mut v = Vec::new();
                    for part in value.split(',') {
                        v.push(parse_region(line, part.trim())?);
                    }
                    if v.is_empty() {
                        return err(line, "empty region list");
                    }
                    classes = Some(v);
                }
            }
            "injections" => campaign.injections = parse_u64(line, value)? as u32,
            "seed" => campaign.seed = parse_u64(line, value)?,
            "threads" => campaign.threads = parse_u64(line, value)? as usize,
            "epoch_rounds" => campaign.epoch_rounds = parse_u64(line, value)? as u32,
            "obs_capacity" => campaign.obs_capacity = parse_u64(line, value)? as u32,
            "budget_factor" => {
                campaign.budget_factor = value.parse().map_err(|_| ConfigError {
                    line,
                    msg: format!("bad float `{value}`"),
                })?
            }
            "tiny" => {
                tiny = match value {
                    "true" | "yes" | "1" => true,
                    "false" | "no" | "0" => false,
                    other => return err(line, format!("expected a boolean, got `{other}`")),
                }
            }
            other => return err(line, format!("unknown key `{other}`")),
        }
    }
    let app = app.ok_or(ConfigError {
        line: 0,
        msg: "missing required key `app`".into(),
    })?;
    Ok(ExperimentSpec {
        app,
        classes: classes.unwrap_or_else(|| TargetClass::ALL.to_vec()),
        campaign,
        tiny,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_parses() {
        let spec = parse_spec(
            "# campaign for the NAMD analogue\n\
             app = moldyn\n\
             injections = 400\n\
             regions = regular-reg, fp-reg, message  # three rows\n\
             seed = 0xFA17\n\
             threads = 4\n\
             budget_factor = 2.5\n\
             epoch_rounds = 8\n\
             obs_capacity = 512\n\
             tiny = true\n",
        )
        .unwrap();
        assert_eq!(spec.app, AppKind::Moldyn);
        assert_eq!(
            spec.classes,
            vec![
                TargetClass::RegularReg,
                TargetClass::FpReg,
                TargetClass::Message
            ]
        );
        assert_eq!(spec.campaign.injections, 400);
        assert_eq!(spec.campaign.seed, 0xFA17);
        assert_eq!(spec.campaign.threads, 4);
        assert!((spec.campaign.budget_factor - 2.5).abs() < 1e-12);
        assert_eq!(spec.campaign.epoch_rounds, 8);
        assert_eq!(spec.campaign.obs_capacity, 512);
        assert!(spec.tiny);
    }

    #[test]
    fn defaults_fill_in() {
        let spec = parse_spec("app = wavetoy\n").unwrap();
        assert_eq!(spec.classes.len(), 8);
        assert_eq!(
            spec.campaign.injections,
            CampaignConfig::default().injections
        );
        assert!(!spec.tiny);
    }

    #[test]
    fn all_regions_keyword() {
        let spec = parse_spec("app = climsim\nregions = all\n").unwrap();
        assert_eq!(spec.classes, TargetClass::ALL.to_vec());
    }

    #[test]
    fn errors_carry_lines() {
        assert_eq!(parse_spec("app = nosuch").unwrap_err().line, 1);
        assert_eq!(parse_spec("app = moldyn\nbogus = 1").unwrap_err().line, 2);
        assert_eq!(
            parse_spec("app = moldyn\n\nregions = heap, nope")
                .unwrap_err()
                .line,
            3
        );
        assert_eq!(parse_spec("injections = 10").unwrap_err().line, 0); // no app
        assert_eq!(parse_spec("app moldyn").unwrap_err().line, 1); // no '='
        assert_eq!(
            parse_spec("app = moldyn\ntiny = maybe").unwrap_err().line,
            2
        );
        assert_eq!(
            parse_spec("app = moldyn\ninjections = ten")
                .unwrap_err()
                .line,
            2
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse_spec("\n# header\n   \napp = wavetoy # trailing\n").unwrap();
        assert_eq!(spec.app, AppKind::Wavetoy);
    }
}
