//! # fl-inject — software fault injection for MPI applications
//!
//! The paper's primary contribution (Lu & Reed, "Assessing Fault
//! Sensitivity in MPI Applications", SC 2004), rebuilt on the FaultLab
//! substrates: simulate single-event upsets by flipping single bits in
//!
//! * **registers** — general-purpose, EIP, EFLAGS, the 80-bit x87 data
//!   registers and the seven FPU special registers;
//! * **the application's address space** — text, data, BSS, heap and
//!   stack, using the paper's region-targeting techniques (symbol-table
//!   fault dictionary, tagged malloc-chunk scan, EBP stack walk), with
//!   MPI-library objects excluded;
//! * **MPI messages** — a bit at a uniformly drawn offset of a rank's
//!   incoming channel-level byte stream, hitting headers and payloads in
//!   proportion to the application's traffic mix (§3.3);
//!
//! then observe the run and classify it per §5.1 as Correct, Crash,
//! Hang, Incorrect output, Application-Detected, or MPI-Detected.
//! Guarded (fl-guard) campaigns extend the taxonomy with Guard-Detected
//! and Recovered, and [`CampaignBuilder::run_coverage`] runs every
//! trial's fault both bare and guarded to measure detection coverage
//! (see [`guarded`]).
//!
//! Quick start:
//!
//! ```
//! use fl_apps::{App, AppKind, AppParams};
//! use fl_inject::{CampaignBuilder, TargetClass};
//!
//! let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
//! let result = CampaignBuilder::new(&app)
//!     .classes(&[TargetClass::RegularReg])
//!     .injections(10)
//!     .run();
//! let tally = &result.classes[0].tally;
//! assert_eq!(tally.executions, 10);
//! println!("{}", fl_inject::render_table(&result, "demo"));
//! ```

pub mod builder;
pub mod campaign;
pub mod chaos;
pub mod config;
pub mod engine;
pub mod faultmodel;
pub mod ft;
pub mod guarded;
pub mod json;
pub mod obs;
pub mod outcome;
pub mod perturb;
pub mod progress;
pub mod regpressure;
pub mod report;
pub mod sampling;
pub mod ser;
pub mod spec;
pub mod suggest;
pub mod target;

pub use builder::CampaignBuilder;
#[allow(deprecated)] // re-exported for compatibility; see their notes
pub use campaign::{run_trial, run_trial_forked, run_trial_traced};
pub use campaign::{
    trial_seed, CampaignConfig, CampaignResult, ClassResult, Dictionaries, TrialRecord,
};
pub use chaos::{
    chaos_classes, chaos_jsonl, draw_chaos, is_covered, render_chaos, render_chaos_focus,
    render_chaos_tsv, run_chaos_engine, syscall_counts, ChaosCell, ChaosFault, ChaosPolicy,
    ChaosResult, ContractCheck, Defense, SyscallCounts,
};
pub use config::{parse_spec, ConfigError, ExperimentSpec};
pub use engine::{
    parse_record_line, record_line, run_campaign_engine, run_spec, sort_records_jsonl,
    CompletedSlots, EngineControl, EngineRun, EngineSink, NullSink, RunState, SpecOutcome,
    TrialOutput, VecSink,
};
pub use faultmodel::{compare_models, run_model_trial, FaultModel};
pub use fl_ft::{
    ft_config, run_app, run_replicated, run_respawn, run_shrink, shrink, ulfm_config, FtMode,
    FtPolicy, FtReport, RankKill,
};
pub use fl_guard::{run_guarded, GuardPolicy, GuardReport};
pub use ft::{
    draw_kill, ft_jsonl, render_ft, render_ft_focus, render_ft_tsv, run_ft_engine, FtKillTrial,
    FtReplicaTrial, FtResult,
};
pub use guarded::{
    coverage_jsonl, render_coverage, render_coverage_tsv, run_coverage_engine, run_guarded_trial,
    CoverageClassResult, CoverageResult, GuardedTrialRecord, TransitionMatrix,
};
pub use obs::{
    exec_cache_jsonl, exec_cache_tsv, trial_metrics, CampaignMetrics, ClassMetrics, TrialMetrics,
    TrialTrace,
};
pub use outcome::{classify, Manifestation, Tally};
pub use perturb::{
    classify_perturb, draw_perturb, perturb_classes, perturb_jsonl, render_perturb,
    render_perturb_focus, render_perturb_tsv, run_perturb_engine, Detection, PerturbCell,
    PerturbFault, PerturbPolicy, PerturbResult,
};
pub use progress::{
    EngineProgress, ProgressMonitor, ProgressSample, ProgressVerdict, StderrProgress,
};
pub use regpressure::{analyze_image, render_register_pressure, RegisterPressure};
pub use report::{
    register_breakdown, render_register_breakdown, render_table, render_tsv, MetricsReport, Report,
    ReportFormat,
};
pub use sampling::{confidence_interval, estimation_error, sample_size, z_value};
pub use ser::{application_corruptions_per_run, SerModel};
pub use spec::{CampaignSpec, SpecMode};
pub use suggest::{edit_distance, suggest};
pub use target::{
    fp_registers, regular_registers, resolve_heap_target, resolve_stack_target, FaultDictionary,
    TargetClass,
};
