//! Nearest-match suggestions for user-supplied names.
//!
//! Shared by the `FaultModel`/`TargetClass` parsers (and reusable by any
//! CLI surface) so every "unknown X" error can offer a did-you-mean hint
//! with the same matching rule the `faultlab` flag validator uses.

/// Levenshtein edit distance between two ASCII-ish strings.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate to `input`, if any is plausibly what the user
/// meant: within edit distance 3, or a prefix relationship in either
/// direction (so `net` suggests `net-drop` and `transientt` suggests
/// `transient`).
pub fn suggest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|&v| (edit_distance(input, v), v))
        .filter(|&(d, v)| d <= 3 || v.starts_with(input) || input.starts_with(v))
        .min_by_key(|&(d, _)| d)
        .map(|(_, v)| v)
}

/// Format the standard "unknown X" error, appending a did-you-mean hint
/// when one of `candidates` is close to `input`.
pub fn unknown(what: &str, input: &str, candidates: &[&str]) -> String {
    match suggest(input, candidates) {
        Some(v) => format!("unknown {what} `{input}` (did you mean `{v}`?)"),
        None => format!("unknown {what} `{input}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_exact() {
        assert_eq!(edit_distance("transient", "transient"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("sitting", "kitten"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn suggests_the_closest_plausible_candidate() {
        let cands = ["transient", "held-flip", "stuck-at-0", "net-drop"];
        assert_eq!(suggest("transiet", &cands), Some("transient"));
        assert_eq!(suggest("net", &cands), Some("net-drop"));
        assert_eq!(suggest("zzzzzzzzzz", &cands), None);
    }

    #[test]
    fn unknown_formats_with_and_without_hint() {
        assert_eq!(
            unknown("fault model", "transiet", &["transient"]),
            "unknown fault model `transiet` (did you mean `transient`?)"
        );
        assert_eq!(
            unknown("fault model", "qqqqqqqqqq", &["transient"]),
            "unknown fault model `qqqqqqqqqq`"
        );
    }
}
