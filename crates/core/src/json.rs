//! A minimal JSON reader/writer for campaign specs and trial records.
//!
//! The workspace has no external dependencies, so the wire format of
//! the campaign service is handled by this ~200-line recursive-descent
//! parser instead of serde. It covers exactly the JSON the lab emits:
//! objects, arrays, strings with the standard escapes, integers and
//! floats, booleans and null. Numbers keep their source text so that
//! 64-bit seeds round-trip without `f64` truncation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order irrelevant —
/// lookups go through [`Json::get`]; a `BTreeMap` keeps comparisons and
/// test failure output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (integer exactness matters:
    /// seeds are full u64s).
    Num(String),
    /// A string, already unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` (integer tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).unwrap();
    if tok.is_empty() || tok.parse::<f64>().is_err() {
        return Err(format!("bad number `{tok}` at byte {start}"));
    }
    Ok(Json::Num(tok.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let n = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    c if c < 0x80 => 1,
                    c if c >= 0xF0 => 4,
                    c if c >= 0xE0 => 3,
                    _ => 2,
                };
                out.push_str(
                    std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|e| format!("invalid UTF-8 in string at byte {pos}: {e}"))?,
                );
                *pos += ch_len;
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes). Fault details are plain ASCII today, but the writer must
/// never emit an unparsable line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{8}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
