//! Performance-interference campaigns with degradation-aware detection
//! (fl-perturb).
//!
//! Every fault family so far corrupts *state*: bits, messages, whole
//! processes. This module injects faults that corrupt *timing* only —
//! a multiplicative tax on one rank's scheduling quantum
//! ([`FaultModel::QuantumTax`]), a co-scheduled hog stealing a share of
//! a node group's quanta ([`FaultModel::HogRank`]), and a per-access
//! latency surcharge on retired loads and stores
//! ([`FaultModel::MemStall`]). All three draw on the deterministic
//! block/instruction clocks, never wall time, so perturb campaigns keep
//! the byte-identity guarantees of every other campaign flavour.
//!
//! Interference breaks fixed-threshold liveness detection: a taxed rank
//! is silent for long stretches but *alive*, and a fixed heartbeat
//! deadline declares it dead — a false positive whose spurious recovery
//! costs more than the slowdown it "cured". The matrix this module
//! produces measures exactly that: every interference model (plus the
//! two true process failures, kill and wedge, as the detection
//! denominator) runs under three detection columns — none, the fixed
//! threshold, and an *accrual* detector whose deadline is calibrated
//! from each rank's observed worst recovered silence. The contracts at
//! the bottom are the point: the accrual column must show **zero**
//! false positives on pure interference while still detecting ≥90% of
//! real kills and wedges.
//!
//! The slot space is `models × detections × injections` on the shared
//! engine pool; trial `(mi, di, k)` draws from `trial_seed(seed, mi,
//! k)` — the model index only — so all three detection columns face the
//! byte-identical interference draw.

use crate::campaign::{trial_budget, trial_seed, trial_world_config, CampaignConfig, TrialRecord};
use crate::chaos::ContractCheck;
use crate::engine::{run_pool, CompletedSlots, EngineControl, EngineSink, TrialOutput};
use crate::faultmodel::FaultModel;
use crate::guarded::slug;
use crate::obs::{CampaignMetrics, ClassMetrics};
use crate::outcome::{classify, Manifestation, Tally};
use crate::progress::EngineProgress;
use crate::target::TargetClass;
use fl_apps::{App, AppKind, Golden};
use fl_machine::MemStall;
use fl_mpi::{FailureDetector, HogRank, MpiWorld, QuantumTax, RankKill, WorldExit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One column of the interference matrix: what stands between a slow
/// rank and a spurious failure verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// No liveness detection: interference shows its bare cost and true
    /// failures become deadline misses (hangs).
    None,
    /// The fixed-threshold heartbeat detector: silence matures into a
    /// failure verdict after a static number of rounds.
    Fixed,
    /// The accrual detector: the deadline is calibrated per rank from
    /// the longest silence it ever *recovered* from, with a floor of 8x
    /// the fixed threshold.
    Accrual,
}

impl Detection {
    /// Every column, matrix order.
    pub const ALL: [Detection; 3] = [Detection::None, Detection::Fixed, Detection::Accrual];

    /// Canonical machine-readable name; round-trips through
    /// [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Detection::None => "none",
            Detection::Fixed => "fixed",
            Detection::Accrual => "accrual",
        }
    }

    /// Every parseable detection name, for did-you-mean suggestions.
    pub const NAMES: [&'static str; 3] = ["none", "fixed", "accrual"];
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Detection {
    type Err = String;

    fn from_str(s: &str) -> Result<Detection, String> {
        Ok(match s {
            "none" => Detection::None,
            "fixed" => Detection::Fixed,
            "accrual" => Detection::Accrual,
            other => {
                return Err(crate::suggest::unknown(
                    "detection",
                    other,
                    &Detection::NAMES,
                ))
            }
        })
    }
}

/// Knobs of a perturb campaign: detector cadence plus the draw ranges
/// of the three interference models. All integers — the policy rides
/// the canonical spec JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbPolicy {
    /// Heartbeat probe cadence for the detection columns, in rounds.
    pub probe_rounds: u64,
    /// Fixed suspicion deadline, in rounds (the accrual column floors
    /// at 8x this).
    pub suspect_rounds: u64,
    /// Interference window draw range, in scheduler rounds (inclusive;
    /// shared by the tax and hog models).
    pub tax_rounds: (u64, u64),
    /// Quantum-tax severity draw range, in permille of the victim's
    /// quantum (995 = the rank runs one round in 200).
    pub tax_permille: (u32, u32),
    /// Hog share draw range, in permille of each hogged rank's quantum.
    pub hog_share_permille: (u32, u32),
    /// Ranks per "node" for the hog model (the hog steals from a whole
    /// co-scheduled group).
    pub hog_node_ranks: u16,
    /// Memory-stall surcharge draw range, in retired-insn units charged
    /// per load/store (inclusive).
    pub stall_per_access: (u64, u64),
    /// Memory-stall window draw range, in sixteenths of the victim's
    /// golden instruction count (inclusive).
    pub stall_window_per16: (u64, u64),
    /// Slowdown threshold separating [`Manifestation::Correct`] from
    /// [`Manifestation::Degraded`], in permille of the clean reference
    /// round count (1050 = 5% slower).
    pub degraded_permille: u64,
}

impl Default for PerturbPolicy {
    fn default() -> PerturbPolicy {
        PerturbPolicy {
            probe_rounds: 8,
            suspect_rounds: 32,
            tax_rounds: (256, 1024),
            tax_permille: (900, 995),
            hog_share_permille: (300, 900),
            hog_node_ranks: 2,
            stall_per_access: (1, 6),
            stall_window_per16: (2, 8),
            degraded_permille: 1050,
        }
    }
}

/// One drawn perturb fault, armable on any world (each detection column
/// arms the identical draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerturbFault {
    /// A scheduling-quantum tax on one rank.
    Tax(QuantumTax),
    /// A co-scheduled hog over a node group.
    Hog(HogRank),
    /// A per-access latency surcharge on one rank.
    Stall {
        /// The contended rank.
        rank: u16,
        /// The armed surcharge window.
        stall: MemStall,
    },
    /// A true process failure — the detection denominator rows.
    Kill(RankKill),
}

impl PerturbFault {
    /// Plant the fault in a freshly built world.
    pub fn arm(&self, w: &mut MpiWorld) {
        match self {
            PerturbFault::Tax(t) => w.set_quantum_tax(*t),
            PerturbFault::Hog(h) => w.set_hog(*h),
            PerturbFault::Stall { rank, stall } => w.machine_mut(*rank).set_mem_stall(*stall),
            PerturbFault::Kill(k) => w.set_rank_kill(*k),
        }
    }

    /// Is this a pure-interference fault (degrades timing, never
    /// state)? False for the kill/wedge denominator rows.
    pub fn is_interference(&self) -> bool {
        !matches!(self, PerturbFault::Kill(_))
    }
}

/// Draw the perturb fault for one trial seed. Fully determined by
/// `(golden, model, seed, nranks, policy)` and shared by all three
/// detection columns of the trial's row.
pub fn draw_perturb(
    golden: &Golden,
    model: FaultModel,
    seed: u64,
    nranks: u16,
    policy: &PerturbPolicy,
) -> (PerturbFault, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = |rng: &mut StdRng| {
        let (lo, hi) = policy.tax_rounds;
        let lo = lo.max(1);
        rng.gen_range(lo..hi.max(lo) + 1)
    };
    match model {
        FaultModel::QuantumTax => {
            let rank = rng.gen_range(0..nranks);
            let at_blocks = rng.gen_range(1..golden.blocks[rank as usize].max(2));
            let rounds = window(&mut rng);
            let (lo, hi) = policy.tax_permille;
            let tax_permille = rng.gen_range(lo..hi.max(lo) + 1).min(999);
            (
                PerturbFault::Tax(QuantumTax {
                    rank,
                    at_blocks,
                    rounds,
                    tax_permille,
                }),
                format!("tax {tax_permille}\u{2030} on rank {rank} for {rounds} rounds @ block {at_blocks}"),
            )
        }
        FaultModel::HogRank => {
            // Contiguous groups of `hog_node_ranks` form the nodes; a
            // hog lands on one whole group.
            let per = policy.hog_node_ranks.clamp(1, nranks);
            let nodes = nranks.div_ceil(per);
            let node = rng.gen_range(0..nodes);
            let lo = node * per;
            let hi = ((node + 1) * per).min(nranks);
            let mut mask = 0u32;
            for r in lo..hi {
                mask |= 1 << r;
            }
            let trigger_rank = mask.trailing_zeros() as u16;
            let at_blocks = rng.gen_range(1..golden.blocks[trigger_rank as usize].max(2));
            let rounds = window(&mut rng);
            let (slo, shi) = policy.hog_share_permille;
            let share_permille = rng.gen_range(slo..shi.max(slo) + 1).min(999);
            (
                PerturbFault::Hog(HogRank {
                    mask,
                    trigger_rank,
                    at_blocks,
                    rounds,
                    share_permille,
                }),
                format!(
                    "hog steals {share_permille}\u{2030} from node {node} (mask {mask:#06b}) \
                     for {rounds} rounds @ block {at_blocks}"
                ),
            )
        }
        FaultModel::MemStall => {
            let rank = rng.gen_range(0..nranks);
            let insns = golden.insns[rank as usize].max(16);
            let at_insns = rng.gen_range(1..insns);
            let (lo, hi) = policy.stall_window_per16;
            let per16 = rng.gen_range(lo.max(1)..hi.max(lo.max(1)) + 1).min(16);
            let window_insns = (insns * per16 / 16).max(1);
            let (plo, phi) = policy.stall_per_access;
            let per_access = rng.gen_range(plo.max(1)..phi.max(plo.max(1)) + 1);
            (
                PerturbFault::Stall {
                    rank,
                    stall: MemStall {
                        at_insns,
                        window_insns,
                        per_access,
                    },
                },
                format!(
                    "stall +{per_access}/access on rank {rank} for {window_insns} insns @ t={at_insns}"
                ),
            )
        }
        FaultModel::KillRank | FaultModel::WedgeRank => {
            let rank = rng.gen_range(0..nranks);
            let at_blocks = rng.gen_range(1..golden.blocks[rank as usize].max(2));
            let wedge = model == FaultModel::WedgeRank;
            (
                PerturbFault::Kill(RankKill {
                    rank,
                    at_blocks,
                    wedge,
                }),
                format!(
                    "{} rank {rank} @ block {at_blocks}",
                    if wedge { "wedge" } else { "kill" }
                ),
            )
        }
        other => unreachable!("draw_perturb only draws perturb/process models, got {other}"),
    }
}

/// The record class of one matrix row: the interference models carry
/// [`TargetClass::Sched`]; the kill/wedge denominator rows are process
/// failures.
pub fn perturb_class(model: FaultModel) -> TargetClass {
    match model {
        FaultModel::KillRank | FaultModel::WedgeRank => TargetClass::Process,
        m => m
            .chaos_class()
            .expect("perturb interference models carry a class"),
    }
}

/// The matrix rows, in slot order: the three interference models, then
/// the two true process failures as the detection denominator.
pub fn perturb_models() -> [FaultModel; 5] {
    let p = FaultModel::perturb_models();
    let k = FaultModel::process_models();
    [p[0], p[1], p[2], k[0], k[1]]
}

/// One cell of the matrix: every trial of one model under one detection
/// column, with the degradation aggregates the outcome tally cannot
/// carry.
#[derive(Debug, Clone)]
pub struct PerturbCell {
    /// Row.
    pub model: FaultModel,
    /// Column.
    pub detection: Detection,
    /// Outcome tally of the cell.
    pub tally: Tally,
    /// Per-trial records, slot order.
    pub trials: Vec<TrialRecord>,
    /// Sum of measured slowdown over trials that finished with correct
    /// output, in permille of the clean reference round count.
    pub slowdown_permille_sum: u64,
    /// Trials contributing to [`PerturbCell::slowdown_permille_sum`].
    pub slowdown_trials: u32,
}

impl PerturbCell {
    /// Mean slowdown factor over correct-output trials (1.0 = clean
    /// pace; 0.0 with no contributing trials).
    pub fn mean_slowdown_x(&self) -> f64 {
        if self.slowdown_trials == 0 {
            return 0.0;
        }
        self.slowdown_permille_sum as f64 / (1000.0 * self.slowdown_trials as f64)
    }

    /// Trials this column ended with a failure verdict — detections on
    /// the process rows, false positives on the interference rows.
    pub fn detected(&self) -> u32 {
        self.tally.count(Manifestation::RankLost)
    }

    /// Trials that missed their deadline entirely (hung or ran out of
    /// budget).
    pub fn deadline_misses(&self) -> u32 {
        self.tally.count(Manifestation::Hang)
    }
}

/// A finished perturb campaign: the full `models × detections` matrix.
#[derive(Debug, Clone)]
pub struct PerturbResult {
    /// Which application.
    pub app: AppKind,
    /// The knobs every run used.
    pub policy: PerturbPolicy,
    /// Cells in row-major order: `cells[mi * 3 + di]`.
    pub cells: Vec<PerturbCell>,
    /// The fault-free reference.
    pub golden: Golden,
    /// Scheduler rounds of the fault-free reference run — the slowdown
    /// denominator.
    pub ref_rounds: u64,
    /// Guest instructions retired across every trial.
    pub insns_total: u64,
}

impl PerturbResult {
    /// The matrix rows, in slot order — [`perturb_models`].
    pub fn models() -> [FaultModel; 5] {
        perturb_models()
    }

    /// The cell at row `mi`, column `di`.
    pub fn cell(&self, mi: usize, di: usize) -> &PerturbCell {
        &self.cells[mi * Detection::ALL.len() + di]
    }

    /// False-positive rate of column `di` over interference row `mi`,
    /// in percent of the row's trials.
    pub fn false_positive_percent(&self, mi: usize, di: usize) -> f64 {
        let c = self.cell(mi, di);
        if c.tally.executions == 0 {
            return 0.0;
        }
        100.0 * c.detected() as f64 / c.tally.executions as f64
    }

    /// The degradation aggregates as [`CampaignMetrics`]: one
    /// [`ClassMetrics`] row per matrix cell carrying the per-trial
    /// slowdown and deadline-miss folds (`faultlab metrics` renders
    /// these like any other campaign's).
    pub fn metrics(&self) -> CampaignMetrics {
        let classes = self
            .cells
            .iter()
            .map(|c| {
                let mut m = ClassMetrics::new(perturb_class(c.model));
                m.trials = c.tally.executions;
                m.deadline_misses = c.deadline_misses();
                m.slowdown_permille_sum = c.slowdown_permille_sum;
                m.slowdown_trials = c.slowdown_trials;
                m
            })
            .collect();
        CampaignMetrics { classes }
    }

    /// The floors this campaign is contracted to hold: the accrual
    /// detector never false-positives on pure interference, and both
    /// real detectors still catch ≥90% of true kills and wedges.
    pub fn contracts(&self) -> Vec<ContractCheck> {
        let ndet = Detection::ALL.len();
        let di_of = |d: Detection| Detection::ALL.iter().position(|&x| x == d).unwrap();
        let interference = 0..FaultModel::perturb_models().len();
        let process = FaultModel::perturb_models().len()..Self::models().len();

        // 1. Zero false positives: over ALL pure-interference trials
        //    under the accrual detector, none may end in a failure
        //    verdict. The floor is 100% — a single spurious recovery
        //    breaks the contract.
        let di = di_of(Detection::Accrual);
        let (mut quiet, mut denom) = (0u32, 0u32);
        for mi in interference.clone() {
            let c = self.cell(mi, di);
            denom += c.tally.executions;
            quiet += c.tally.executions - c.detected();
        }
        let fp_check = ContractCheck {
            name: "accrual-zero-false-positives",
            what: "pure-interference trials the accrual detector left alone",
            covered: quiet,
            denom,
            floor_percent: 100.0,
        };
        let _ = ndet;

        // 2./3. Detection coverage: over the kill and wedge rows, each
        //    real detector must convert ≥90% of trials into an explicit
        //    failure verdict instead of a silent deadline miss.
        let mut checks = vec![fp_check];
        for (name, det) in [
            ("fixed-detects-process-failures", Detection::Fixed),
            ("accrual-detects-process-failures", Detection::Accrual),
        ] {
            let di = di_of(det);
            let (mut caught, mut denom) = (0u32, 0u32);
            for mi in process.clone() {
                let c = self.cell(mi, di);
                denom += c.tally.executions;
                caught += c.detected();
            }
            checks.push(ContractCheck {
                name,
                what: "kill/wedge trials the detector converted into a failure verdict",
                covered: caught,
                denom,
                floor_percent: 90.0,
            });
        }
        checks
    }
}

/// The per-slot record class vector of a perturb campaign, len `5 × 3`
/// — what [`CompletedSlots::from_jsonl`] validates resumes against.
pub fn perturb_classes() -> Vec<TargetClass> {
    perturb_models()
        .iter()
        .flat_map(|m| {
            let c = perturb_class(*m);
            std::iter::repeat_n(c, Detection::ALL.len())
        })
        .collect()
}

/// Sum of retired guest instructions across a world's ranks.
fn world_insns(w: &MpiWorld) -> u64 {
    (0..w.nranks()).map(|r| w.machine(r).counters.insns).sum()
}

/// Classify one finished perturb trial: the ordinary §5.1 classes,
/// except that a correct-output clean exit further splits into
/// [`Manifestation::Correct`] vs [`Manifestation::Degraded`] on the
/// measured slowdown. Returns the classification and the slowdown in
/// permille of the clean reference.
pub fn classify_perturb(
    exit: &WorldExit,
    output: &[u8],
    golden_output: &[u8],
    rounds: u64,
    ref_rounds: u64,
    degraded_permille: u64,
) -> (Manifestation, u64) {
    let permille = rounds.saturating_mul(1000) / ref_rounds.max(1);
    let m = match exit {
        WorldExit::Clean if output == golden_output => {
            if permille > degraded_permille {
                Manifestation::Degraded
            } else {
                Manifestation::Correct
            }
        }
        e => classify(e, output, golden_output),
    };
    (m, permille)
}

/// Perturb-campaign execution, no control/sink/resume (the
/// [`crate::CampaignBuilder::run_perturb`] backend).
pub(crate) fn run_perturb_impl(
    app: &App,
    cfg: &CampaignConfig,
    policy: &PerturbPolicy,
) -> PerturbResult {
    run_perturb_engine(
        app,
        cfg,
        policy,
        &crate::engine::NullSink,
        &EngineControl::new(),
        None,
    )
    .expect("uncontrolled perturb runs always complete")
}

/// Run a perturb campaign on the shared engine pool. `cfg.injections`
/// trials per `model × detection` cell; pause/stop via `control`,
/// records and progress through `sink`, optional record-level resume.
/// Returns `None` when stopped before every slot completed.
pub fn run_perturb_engine(
    app: &App,
    cfg: &CampaignConfig,
    policy: &PerturbPolicy,
    sink: &dyn EngineSink,
    control: &EngineControl,
    resume: Option<CompletedSlots>,
) -> Option<PerturbResult> {
    let golden = app.golden(2_000_000_000);
    // Interference inflates rounds — and the mem-stall surcharge
    // inflates retired-insn accounting — without adding real work.
    // Double the ordinary hang budget so a slow-but-correct run never
    // masquerades as non-termination.
    let budget = trial_budget(&golden, cfg).saturating_mul(2);
    let models = perturb_models();
    let ndet = Detection::ALL.len();
    let nranks = app.params.nranks;

    // The slowdown denominator: one fault-free run under the bare
    // (detection-off) configuration. Probe answers never add rounds, so
    // the reference holds for every column.
    let ref_rounds = {
        let mut c = trial_world_config(app, budget, 0, cfg.fastpath);
        c.ulfm = false;
        c.ft.enabled = false;
        let mut w = MpiWorld::new(&app.image, c);
        let exit = w.run();
        assert_eq!(exit, WorldExit::Clean, "reference run must be clean");
        w.round()
    };

    let resume = resume.unwrap_or_default();
    let resumed_total = resume.len() as u64;
    let total = (models.len() * ndet) as u64 * cfg.injections as u64;
    let done = AtomicU64::new(0);
    let started = std::time::Instant::now();

    let run_cell = |mi: usize, di: usize, k: u32| -> (Manifestation, String, u64) {
        let seed = trial_seed(cfg.seed, mi, k);
        let model = models[mi];
        let (fault, detail) = draw_perturb(&golden, model, seed, nranks, policy);
        let det = Detection::ALL[di];
        let mut wcfg = trial_world_config(app, budget, 0, cfg.fastpath);
        wcfg.seed = seed;
        // Each column isolates exactly one detector: app-visible ULFM
        // recovery would absorb failure verdicts and hide both the
        // detections and the false positives this matrix measures.
        wcfg.ulfm = false;
        wcfg.ft = FailureDetector {
            enabled: det != Detection::None,
            probe_rounds: policy.probe_rounds,
            suspect_rounds: policy.suspect_rounds,
            accrual: det == Detection::Accrual,
        };
        let mut w = MpiWorld::new(&app.image, wcfg);
        fault.arm(&mut w);
        let exit = w.run();
        let out = app.comparable_output(&w);
        let (outcome, permille) = classify_perturb(
            &exit,
            &out,
            &golden.output,
            w.round(),
            ref_rounds,
            policy.degraded_permille,
        );
        (
            outcome,
            format!(
                "{}/{model}: {detail} [{permille}\u{2030} of clean]",
                det.name()
            ),
            world_insns(&w),
        )
    };

    let counts = vec![cfg.injections; models.len() * ndet];
    let (slots, complete) = run_pool(&counts, cfg.threads, control, |ci, k| {
        let out = match resume.take(ci, k) {
            Some(t) => t,
            None => {
                let (mi, di) = (ci / ndet, ci % ndet);
                let (outcome, detail, insns) = run_cell(mi, di, k);
                let t = TrialOutput {
                    ci,
                    k,
                    record: TrialRecord {
                        class: perturb_class(models[mi]),
                        detail,
                        outcome,
                    },
                    insns,
                    metrics: None,
                };
                sink.trial(&t);
                t
            }
        };
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        sink.progress(EngineProgress {
            total,
            done: d,
            resumed: resumed_total,
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        out
    });
    if !complete {
        return None;
    }

    let mut insns_total = 0u64;
    let mut cells = Vec::with_capacity(models.len() * ndet);
    for (ci, cell_slots) in slots.into_iter().enumerate() {
        let (mi, di) = (ci / ndet, ci % ndet);
        let mut tally = Tally::default();
        let mut slowdown_permille_sum = 0u64;
        let mut slowdown_trials = 0u32;
        let trials: Vec<TrialRecord> = cell_slots
            .into_iter()
            .map(|s| {
                let t = s.expect("complete run fills every slot");
                insns_total += t.insns;
                tally.record(t.record.outcome);
                if matches!(
                    t.record.outcome,
                    Manifestation::Correct | Manifestation::Degraded
                ) {
                    // The permille is embedded in the detail, but the
                    // record stream is the wire: recompute from the
                    // trial coordinates instead of parsing text.
                    slowdown_permille_sum += detail_permille(&t.record.detail);
                    slowdown_trials += 1;
                }
                t.record
            })
            .collect();
        cells.push(PerturbCell {
            model: models[mi],
            detection: Detection::ALL[di],
            tally,
            trials,
            slowdown_permille_sum,
            slowdown_trials,
        });
    }
    Some(PerturbResult {
        app: app.kind,
        policy: *policy,
        cells,
        golden,
        ref_rounds,
        insns_total,
    })
}

/// Read the measured slowdown back out of a record's detail suffix
/// `[N\u{2030} of clean]` — the one number that must survive the record
/// stream so resumed campaigns aggregate identically to uninterrupted
/// ones.
fn detail_permille(detail: &str) -> u64 {
    detail
        .rsplit_once('[')
        .and_then(|(_, tail)| tail.split('\u{2030}').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Render the detector-comparison matrix as a text table: per model,
/// each detection column's failure verdicts (false positives on the
/// interference rows, detections on the process rows) and mean
/// slowdown.
pub fn render_perturb(r: &PerturbResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "verdicts = trials ended by a failure verdict (false positives on \
         interference rows, detections on kill/wedge rows); x = mean slowdown"
    );
    let _ = write!(out, "{:<13} {:>6} |", "model", "trials");
    for d in Detection::ALL {
        let _ = write!(out, " {:>19}", d.name());
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(22 + 20 * Detection::ALL.len()));
    for (mi, model) in PerturbResult::models().iter().enumerate() {
        let trials = r.cell(mi, 0).tally.executions;
        let _ = write!(out, "{:<13} {:>6} |", model.to_string(), trials);
        for di in 0..Detection::ALL.len() {
            let c = r.cell(mi, di);
            let _ = write!(
                out,
                " {:>4} verd  x{:>6.2}",
                c.detected(),
                c.mean_slowdown_x()
            );
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", "-".repeat(22 + 20 * Detection::ALL.len()));
    for c in r.contracts() {
        let _ = writeln!(
            out,
            "contract {:<34} {:>3}/{:<3} = {:>5.1}% (floor {:.0}%) {}",
            c.name,
            c.covered,
            c.denom,
            c.percent(),
            c.floor_percent,
            if c.passed() { "PASS" } else { "FAIL" }
        );
    }
    out
}

/// Render the single-row focus view (the CLI's `perturb --model M`):
/// one model's outcome tallies under every detection column.
pub fn render_perturb_focus(r: &PerturbResult, model: FaultModel) -> String {
    let mi = PerturbResult::models()
        .iter()
        .position(|&m| m == model)
        .expect("focus model is a perturb matrix model");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} / model {model}: {} trials per detection column",
        r.app.name(),
        r.cell(mi, 0).tally.executions
    );
    for (di, d) in Detection::ALL.iter().enumerate() {
        let c = r.cell(mi, di);
        let _ = write!(out, "  {:<8}", d.name());
        let mut first = true;
        for m in Manifestation::ALL {
            let n = c.tally.count(m);
            if n > 0 {
                let _ = write!(out, "{}{m} {n}", if first { " " } else { ", " });
                first = false;
            }
        }
        if c.slowdown_trials > 0 {
            let _ = write!(out, "  [mean slowdown x{:.2}]", c.mean_slowdown_x());
        }
        out.push('\n');
    }
    out
}

/// Render the matrix as TSV: one row per `model × detection` cell with
/// full outcome counts and the degradation aggregates.
pub fn render_perturb_tsv(r: &PerturbResult) -> String {
    let mut out =
        String::from("model\tdetection\ttrials\tverdicts\tdeadline_misses\tslowdown_mean_permille");
    for m in Manifestation::ALL {
        let _ = write!(out, "\t{}", slug(m));
    }
    out.push('\n');
    for (mi, model) in PerturbResult::models().iter().enumerate() {
        for (di, d) in Detection::ALL.iter().enumerate() {
            let c = r.cell(mi, di);
            let mean = if c.slowdown_trials == 0 {
                0
            } else {
                c.slowdown_permille_sum / c.slowdown_trials as u64
            };
            let _ = write!(
                out,
                "{model}\t{d}\t{}\t{}\t{}\t{mean}",
                c.tally.executions,
                c.detected(),
                c.deadline_misses(),
            );
            for m in Manifestation::ALL {
                let _ = write!(out, "\t{}", c.tally.count(m));
            }
            out.push('\n');
        }
    }
    out
}

/// Serialize the matrix as JSONL: one object per `model × detection`
/// cell.
pub fn perturb_jsonl(r: &PerturbResult) -> String {
    let mut out = String::new();
    for (mi, model) in PerturbResult::models().iter().enumerate() {
        for (di, d) in Detection::ALL.iter().enumerate() {
            let c = r.cell(mi, di);
            let mean = if c.slowdown_trials == 0 {
                0
            } else {
                c.slowdown_permille_sum / c.slowdown_trials as u64
            };
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"model\":\"{model}\",\"detection\":\"{d}\",\"trials\":{},\"verdicts\":{},\"deadline_misses\":{},\"slowdown_mean_permille\":{mean},\"outcomes\":{{",
                r.app.name(),
                c.tally.executions,
                c.detected(),
                c.deadline_misses(),
            );
            let mut first = true;
            for m in Manifestation::ALL {
                let n = c.tally.count(m);
                if n > 0 {
                    let _ = write!(out, "{}\"{}\":{n}", if first { "" } else { "," }, slug(m));
                    first = false;
                }
            }
            out.push_str("}}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{parse_record_line, VecSink};
    use fl_apps::AppParams;

    fn tiny() -> App {
        App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy))
    }

    #[test]
    fn perturb_draws_are_reproducible_and_model_shaped() {
        let app = tiny();
        let golden = app.golden(2_000_000_000);
        let policy = PerturbPolicy::default();
        for (mi, model) in perturb_models().iter().enumerate() {
            for k in 0..4u32 {
                let seed = trial_seed(11, mi, k);
                let a = draw_perturb(&golden, *model, seed, app.params.nranks, &policy);
                let b = draw_perturb(&golden, *model, seed, app.params.nranks, &policy);
                assert_eq!(a, b, "{model} draw must be pure in the seed");
                match (model, &a.0) {
                    (FaultModel::QuantumTax, PerturbFault::Tax(t)) => {
                        assert!((900..=995).contains(&t.tax_permille));
                        assert!((256..=1024).contains(&t.rounds));
                        assert!(t.at_blocks >= 1);
                    }
                    (FaultModel::HogRank, PerturbFault::Hog(h)) => {
                        assert!(h.mask > 0 && h.mask < (1 << app.params.nranks));
                        assert_eq!(h.mask >> h.trigger_rank & 1, 1);
                        assert!((300..=900).contains(&h.share_permille));
                    }
                    (FaultModel::MemStall, PerturbFault::Stall { rank, stall }) => {
                        assert!((*rank as usize) < app.params.nranks as usize);
                        assert!((1..=6).contains(&stall.per_access));
                        assert!(stall.window_insns >= 1);
                    }
                    (FaultModel::KillRank, PerturbFault::Kill(k)) => assert!(!k.wedge),
                    (FaultModel::WedgeRank, PerturbFault::Kill(k)) => assert!(k.wedge),
                    (m, f) => panic!("{m} drew {f:?}"),
                }
                assert_eq!(
                    a.0.is_interference(),
                    !matches!(model, FaultModel::KillRank | FaultModel::WedgeRank)
                );
            }
        }
    }

    #[test]
    fn perturb_engine_fills_the_matrix_and_streams_records() {
        let app = tiny();
        let cfg = CampaignConfig {
            injections: 2,
            seed: 0x9E27,
            ..Default::default()
        };
        let sink = VecSink::new(app.kind);
        let r = run_perturb_engine(
            &app,
            &cfg,
            &PerturbPolicy::default(),
            &sink,
            &EngineControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(r.cells.len(), 5 * 3);
        assert!(r.ref_rounds > 0);
        for c in &r.cells {
            assert_eq!(c.tally.executions, 2);
            assert_eq!(c.trials.len(), 2);
        }
        let lines = sink.into_lines();
        assert_eq!(lines.len(), 5 * 3 * 2);
        let classes = perturb_classes();
        for l in &lines {
            let t = parse_record_line(l).expect("perturb records parse back");
            assert_eq!(t.record.class, classes[t.ci]);
        }
        let table = render_perturb(&r, "perturb demo");
        assert!(table.contains("quantum-tax"), "{table}");
        assert!(
            table.contains("contract accrual-zero-false-positives"),
            "{table}"
        );
        let tsv = render_perturb_tsv(&r);
        assert_eq!(tsv.lines().count(), 1 + 5 * 3, "{tsv}");
        let jsonl = perturb_jsonl(&r);
        assert_eq!(jsonl.lines().count(), 5 * 3);
        let focus = render_perturb_focus(&r, FaultModel::QuantumTax);
        assert!(focus.contains("model quantum-tax"), "{focus}");
        // The degradation aggregates surface as campaign metrics.
        let metrics = r.metrics();
        assert_eq!(metrics.classes.len(), 5 * 3);
        assert!(metrics.to_jsonl(app.kind).contains("slowdown"));
    }

    #[test]
    fn accrual_contract_holds_on_the_tiny_matrix() {
        // The tentpole's acceptance floor in unit form: interference
        // trials under the accrual detector never end in a failure
        // verdict, while kills and wedges still do.
        let app = tiny();
        let cfg = CampaignConfig {
            injections: 3,
            seed: 0xACC,
            ..Default::default()
        };
        let r = run_perturb_impl(&app, &cfg, &PerturbPolicy::default());
        for check in r.contracts() {
            assert!(
                check.passed(),
                "{}: {}/{} = {:.1}%",
                check.name,
                check.covered,
                check.denom,
                check.percent()
            );
        }
        // The fixed detector must show the problem the accrual detector
        // fixes somewhere in the interference rows: either false
        // positives or nothing to detect at all — but the quantum-tax
        // row specifically is built to starve past the fixed deadline.
        let tax_fixed = r.cell(0, 1);
        let tax_accrual = r.cell(0, 2);
        assert!(
            tax_fixed.detected() > 0,
            "a 900-995 permille tax must trip the 32-round fixed deadline"
        );
        assert_eq!(tax_accrual.detected(), 0);
    }

    #[test]
    fn classify_perturb_splits_correct_from_degraded() {
        let g = b"out".to_vec();
        let (m, p) = classify_perturb(&WorldExit::Clean, b"out", &g, 1000, 1000, 1050);
        assert_eq!((m, p), (Manifestation::Correct, 1000));
        let (m, p) = classify_perturb(&WorldExit::Clean, b"out", &g, 1500, 1000, 1050);
        assert_eq!((m, p), (Manifestation::Degraded, 1500));
        let (m, _) = classify_perturb(&WorldExit::Clean, b"bad", &g, 1500, 1000, 1050);
        assert_eq!(m, Manifestation::Incorrect);
        let (m, _) = classify_perturb(
            &WorldExit::RankFailed { rank: 1, round: 9 },
            b"",
            &g,
            1200,
            1000,
            1050,
        );
        assert_eq!(m, Manifestation::RankLost);
        let (m, _) = classify_perturb(
            &WorldExit::Hung { reason: "x".into() },
            b"",
            &g,
            4000,
            1000,
            1050,
        );
        assert_eq!(m, Manifestation::Hang);
    }

    #[test]
    fn detail_permille_round_trips_through_the_record_stream() {
        assert_eq!(
            detail_permille("fixed/quantum-tax: tax 950\u{2030} on rank 1 [1342\u{2030} of clean]"),
            1342
        );
        assert_eq!(detail_permille("no suffix"), 0);
    }
}
