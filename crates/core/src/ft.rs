//! Process-failure recovery campaigns: rank kills under every fl-ft
//! discipline, and replica voting against message corruption.
//!
//! The guarded campaigns ([`crate::guarded`]) answer "does channel-level
//! detection catch the paper's faults?"; this module asks the follow-up
//! the paper's §7 conclusion points at — what happens when the fault is
//! not a flipped bit but a *lost process*. Every kill trial draws one
//! [`RankKill`] from the trial seed and runs it four ways from the same
//! draw: bare (the victim strands its peers), detector-only shrink
//! recovery, and buddy-checkpoint respawn recovery. Replication trials
//! pair each §3.3 message fault with an N-replica voted run to measure
//! how often a single corrupt replica is outvoted and masked.

use crate::campaign::{
    draw_fault, trial_budget, trial_seed, trial_world_config, CampaignConfig, Dictionaries,
};
use crate::engine::{run_pool, EngineControl, EngineSink, NullSink};
use crate::guarded::slug;
use crate::outcome::{classify, Manifestation, Tally};
use crate::progress::EngineProgress;
use crate::target::TargetClass;
use fl_apps::{App, AppKind, Golden};
use fl_ft::{run_app, run_replicated, run_respawn, run_shrink, FtMode, FtPolicy, RankKill};
use fl_mpi::{MpiWorld, WorldExit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Draw the kill for trial seed `s`: victim rank, a firing clock inside
/// its golden block count (so the kill always lands mid-run), and the
/// kill flavour. Recomputable from the campaign coordinates, like every
/// other fault draw.
pub fn draw_kill(golden: &Golden, s: u64, nranks: u16) -> (RankKill, String) {
    let mut rng = StdRng::seed_from_u64(s);
    let rank = rng.gen_range(0..nranks);
    let at_blocks = rng.gen_range(1..golden.blocks[rank as usize].max(2));
    let wedge = rng.gen_range(0..2u32) == 1;
    let kill = RankKill {
        rank,
        at_blocks,
        wedge,
    };
    let detail = format!(
        "{} rank {rank} @ block {at_blocks}",
        if wedge { "wedge" } else { "kill" }
    );
    (kill, detail)
}

/// One rank-kill trial: the identical kill under no recovery, shrink
/// recovery, and respawn recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtKillTrial {
    /// Human-readable kill point (same draw in all three runs).
    pub detail: String,
    /// Outcome with no detector: the §5.1 classification of the strand.
    pub baseline: Manifestation,
    /// Outcome under detector + shrink (checked against the
    /// survivor-count golden — the apps are weak-scaled).
    pub shrink: Manifestation,
    /// Outcome under detector + buddy-checkpoint respawn (checked
    /// against the original golden).
    pub respawn: Manifestation,
    /// Respawns the respawn run performed.
    pub respawns: u32,
    /// Outcome in ulfm mode, where the *application* owns recovery
    /// (checked against the original golden — an app that shrinks must
    /// still solve the same global problem). Apps without fl-ulfm code
    /// do not recover here; that asymmetry is the experiment.
    pub app: Manifestation,
    /// Shrinks the application itself performed in the ulfm run.
    pub app_shrinks: u32,
}

impl FtKillTrial {
    /// Did shrink convert a baseline error into a recovery?
    pub fn shrink_recovered(&self) -> bool {
        self.baseline.is_error() && self.shrink == Manifestation::Recovered
    }

    /// Did respawn convert a baseline error into a recovery?
    pub fn respawn_recovered(&self) -> bool {
        self.baseline.is_error() && self.respawn == Manifestation::Recovered
    }

    /// Did the application itself convert a baseline error into a
    /// recovery through the fl-ulfm API?
    pub fn app_recovered(&self) -> bool {
        self.baseline.is_error() && self.app == Manifestation::RecoveredByApp
    }
}

/// One replication trial: the identical message fault in a lone world
/// and in one replica of a voted set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtReplicaTrial {
    /// Human-readable fault point.
    pub detail: String,
    /// Outcome of the unreplicated run.
    pub baseline: Manifestation,
    /// Outcome of the voted run.
    pub replicated: Manifestation,
    /// Replicas voted out.
    pub votes: u32,
}

impl FtReplicaTrial {
    /// Did the vote mask a baseline error?
    pub fn masked(&self) -> bool {
        self.baseline.is_error() && self.replicated == Manifestation::MaskedByReplica
    }
}

/// A full fault-tolerance campaign for one application.
#[derive(Debug, Clone)]
pub struct FtResult {
    /// Which application.
    pub app: AppKind,
    /// The recovery configuration every run used.
    pub policy: FtPolicy,
    /// Paired rank-kill trials, in trial order.
    pub kills: Vec<FtKillTrial>,
    /// Paired replication trials, in trial order.
    pub replicas: Vec<FtReplicaTrial>,
    /// The fault-free reference run.
    pub golden: Golden,
}

impl FtResult {
    /// Kill trials whose baseline manifested an error (the recovery
    /// denominator; a kill always fires, so normally all of them).
    pub fn kill_errors(&self) -> u32 {
        self.kills.iter().filter(|t| t.baseline.is_error()).count() as u32
    }

    /// Baseline kill errors shrink converted to `Recovered`, in percent.
    pub fn shrink_recovery_percent(&self) -> f64 {
        percent(
            self.kills.iter().filter(|t| t.shrink_recovered()).count(),
            self.kill_errors(),
        )
    }

    /// Baseline kill errors respawn converted to `Recovered`, in percent.
    pub fn respawn_recovery_percent(&self) -> f64 {
        percent(
            self.kills.iter().filter(|t| t.respawn_recovered()).count(),
            self.kill_errors(),
        )
    }

    /// Baseline kill errors the application converted to
    /// `RecoveredByApp`, in percent.
    pub fn app_recovery_percent(&self) -> f64 {
        percent(
            self.kills.iter().filter(|t| t.app_recovered()).count(),
            self.kill_errors(),
        )
    }

    /// Replication trials whose baseline manifested an error.
    pub fn replica_errors(&self) -> u32 {
        self.replicas
            .iter()
            .filter(|t| t.baseline.is_error())
            .count() as u32
    }

    /// Baseline message-fault errors the vote masked, in percent.
    pub fn masked_percent(&self) -> f64 {
        percent(
            self.replicas.iter().filter(|t| t.masked()).count(),
            self.replica_errors(),
        )
    }

    /// Outcome tallies of one column of the campaign.
    pub fn tally(&self, pick: impl Fn(&FtKillTrial) -> Manifestation) -> Tally {
        let mut t = Tally::default();
        for k in &self.kills {
            t.record(pick(k));
        }
        t
    }
}

fn percent(num: usize, den: u32) -> f64 {
    if den == 0 {
        return 0.0;
    }
    100.0 * num as f64 / den as f64
}

/// Classify a shrink-mode run. An intervened run solved the smaller
/// survivor problem, so correctness is judged against the shrunken
/// golden; an untouched run is judged against the original.
pub(crate) fn classify_shrink(
    exit: &WorldExit,
    output: &[u8],
    intervened: bool,
    golden: &Golden,
    shrunken_output: &[u8],
) -> Manifestation {
    match exit {
        WorldExit::Clean if intervened => {
            if output == shrunken_output {
                Manifestation::Recovered
            } else {
                Manifestation::Incorrect
            }
        }
        _ => classify(exit, output, &golden.output),
    }
}

/// Classify a respawn-mode run: a recovered run must reproduce the
/// original-size answer.
fn classify_respawn(
    exit: &WorldExit,
    output: &[u8],
    intervened: bool,
    golden: &Golden,
) -> Manifestation {
    match exit {
        WorldExit::Clean if intervened => {
            if output == golden.output {
                Manifestation::Recovered
            } else {
                Manifestation::Incorrect
            }
        }
        _ => classify(exit, output, &golden.output),
    }
}

/// Classify a ulfm-mode run, where recovery belongs to the application.
/// A clean exit whose world the app shrank and whose output matches the
/// original golden is `RecoveredByApp`; a clean exit with no shrink
/// means the kill never disturbed the app (same as `Correct`/
/// `Incorrect` classification); anything else classifies as usual.
pub(crate) fn classify_app(
    exit: &WorldExit,
    output: &[u8],
    app_shrinks: u32,
    golden: &Golden,
) -> Manifestation {
    match exit {
        WorldExit::Clean if app_shrinks > 0 => {
            if output == golden.output {
                Manifestation::RecoveredByApp
            } else {
                Manifestation::Incorrect
            }
        }
        _ => classify(exit, output, &golden.output),
    }
}

/// Classify a replicated run: a clean matching winner with at least one
/// replica voted out means the fault was masked by replication.
pub(crate) fn classify_replicated(
    exit: &WorldExit,
    output: &[u8],
    votes: u32,
    golden: &Golden,
) -> Manifestation {
    match exit {
        WorldExit::Clean if votes > 0 => {
            if output == golden.output {
                Manifestation::MaskedByReplica
            } else {
                Manifestation::Incorrect
            }
        }
        _ => classify(exit, output, &golden.output),
    }
}

/// One ft trial's slot: the two trial families share the engine pool's
/// flattened slot space (kills are group 0, replicas group 1).
enum FtTrial {
    Kill(FtKillTrial),
    Replica(FtReplicaTrial),
}

/// Ft-campaign execution (the [`crate::CampaignBuilder::run_ft`]
/// backend). `kill_trials` rank kills are each run bare + shrink +
/// respawn; `replica_trials` message faults are each run bare +
/// replicated. All runs are cold — recovery owns its own checkpoints.
pub(crate) fn run_ft_impl(
    app: &App,
    cfg: &CampaignConfig,
    policy: &FtPolicy,
    kill_trials: u32,
    replica_trials: u32,
) -> FtResult {
    run_ft_engine(
        app,
        cfg,
        policy,
        kill_trials,
        replica_trials,
        &NullSink,
        &EngineControl::new(),
    )
    .expect("uncontrolled ft runs always complete")
}

/// Ft campaign on the shared engine pool: kills and replication trials
/// are one flattened slot space, stolen across workers; pause/stop via
/// `control`, progress through `sink`. Returns `None` when stopped
/// before every trial completed.
pub fn run_ft_engine(
    app: &App,
    cfg: &CampaignConfig,
    policy: &FtPolicy,
    kill_trials: u32,
    replica_trials: u32,
    sink: &dyn EngineSink,
    control: &EngineControl,
) -> Option<FtResult> {
    let golden = app.golden(2_000_000_000);
    let budget = trial_budget(&golden, cfg);
    let dicts = Dictionaries::build(app);

    // The survivor-count reference: the same image run cold at one fewer
    // rank (the apps are weak-scaled, so this is a different answer).
    let shrunken_output = {
        let mut scfg = trial_world_config(app, budget, 0, cfg.fastpath);
        scfg.nranks -= 1;
        let mut w = MpiWorld::new(&app.image, scfg);
        let exit = w.run();
        assert_eq!(exit, WorldExit::Clean, "shrunken golden run must be clean");
        app.comparable_output(&w)
    };

    let total = kill_trials as u64 + replica_trials as u64;
    let done = AtomicU64::new(0);
    let started = std::time::Instant::now();

    // Kill trials are class position 0 of the seed space, replication
    // trials position 1 — the same coordinates the old per-family loops
    // used, so records are unchanged.
    let run_kill = |k: u32| {
        let seed = trial_seed(cfg.seed, 0, k);
        let (kill, detail) = draw_kill(&golden, seed, app.params.nranks);
        let mut wcfg = trial_world_config(app, budget, 0, cfg.fastpath);
        wcfg.seed = seed;

        // The baseline strand: no detector, no app-visible failures.
        // (A no-op for the paper's three apps; jacobi3d's own config
        // asks for ulfm, which would let it recover out of the
        // baseline column.)
        let mut bare_cfg = wcfg;
        bare_cfg.ulfm = false;
        bare_cfg.ft.enabled = false;
        let mut bare = MpiWorld::new(&app.image, bare_cfg);
        bare.set_rank_kill(kill);
        let bare_exit = bare.run();
        let baseline = classify(&bare_exit, &app.comparable_output(&bare), &golden.output);

        let (sw, sr) = run_shrink(&app.image, wcfg, policy, |w| w.set_rank_kill(kill));
        let shrink = classify_shrink(
            &sr.exit,
            &app.comparable_output(&sw),
            sr.intervened(),
            &golden,
            &shrunken_output,
        );

        let (rw, rr) = run_respawn(&app.image, wcfg, policy, |w| w.set_rank_kill(kill));
        let respawn = classify_respawn(
            &rr.exit,
            &app.comparable_output(&rw),
            rr.intervened(),
            &golden,
        );

        let (aw, ar) = run_app(&app.image, wcfg, policy, |w| w.set_rank_kill(kill));
        let app_m = classify_app(&ar.exit, &app.comparable_output(&aw), ar.shrinks, &golden);

        FtKillTrial {
            detail,
            baseline,
            shrink,
            respawn,
            respawns: rr.respawns,
            app: app_m,
            app_shrinks: ar.shrinks,
        }
    };
    let run_replica = |k: u32| {
        let seed = trial_seed(cfg.seed, 1, k);
        let mut wcfg = trial_world_config(app, budget, 0, cfg.fastpath);
        wcfg.seed = seed;

        let drawn = draw_fault(
            &golden,
            &dicts,
            TargetClass::Message,
            seed,
            app.params.nranks,
        );
        let detail = drawn.detail.clone();
        let mut bare = MpiWorld::new(&app.image, wcfg);
        drawn.arm(&mut bare);
        let bare_exit = bare.run();
        let baseline = classify(&bare_exit, &app.comparable_output(&bare), &golden.output);

        let (vw, vr) = run_replicated(
            &app.image,
            wcfg,
            policy,
            |replica, w| {
                if replica == 0 {
                    // Re-draw the identical fault for the one corrupt
                    // replica (arm() consumes it).
                    draw_fault(
                        &golden,
                        &dicts,
                        TargetClass::Message,
                        seed,
                        app.params.nranks,
                    )
                    .arm(w);
                }
            },
            |w| app.comparable_output(w),
        );
        let replicated =
            classify_replicated(&vr.exit, &app.comparable_output(&vw), vr.votes, &golden);

        FtReplicaTrial {
            detail,
            baseline,
            replicated,
            votes: vr.votes,
        }
    };

    let (mut slots, complete) = run_pool(
        &[kill_trials, replica_trials],
        cfg.threads,
        control,
        |g, k| {
            let t = if g == 0 {
                FtTrial::Kill(run_kill(k))
            } else {
                FtTrial::Replica(run_replica(k))
            };
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            sink.progress(EngineProgress {
                total,
                done: d,
                resumed: 0,
                wall_nanos: started.elapsed().as_nanos() as u64,
            });
            t
        },
    );
    if !complete {
        return None;
    }
    let replicas = slots
        .pop()
        .unwrap()
        .into_iter()
        .map(|r| match r.expect("every replica trial slot filled") {
            FtTrial::Replica(t) => t,
            FtTrial::Kill(_) => unreachable!("group 1 holds replication trials"),
        })
        .collect();
    let kills = slots
        .pop()
        .unwrap()
        .into_iter()
        .map(|r| match r.expect("every kill trial slot filled") {
            FtTrial::Kill(t) => t,
            FtTrial::Replica(_) => unreachable!("group 0 holds kill trials"),
        })
        .collect();

    Some(FtResult {
        app: app.kind,
        policy: *policy,
        kills,
        replicas,
        golden,
    })
}

/// Render an ft campaign as a text table: baseline vs recovery outcome
/// counts for the kill trials, plus the replication masking summary.
pub fn render_ft(r: &FtResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "detector: probe every {} rounds, suspect after {}; buddy line every {} rounds; {} replicas",
        r.policy.detector.probe_rounds,
        r.policy.detector.suspect_rounds,
        r.policy.buddy_rounds,
        r.policy.replicas
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>8} {:>9} | {:>9} {:>10} {:>7}",
        "Trials", "Kills", "BaseErr", "RankLost", "Shrink(%)", "Respawn(%)", "App(%)"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    let base = r.tally(|t| t.baseline);
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>8} {:>9} | {:>9.1} {:>10.1} {:>7.1}",
        "kill-rank",
        r.kills.len(),
        base.errors(),
        r.tally(|t| t.shrink).count(Manifestation::RankLost)
            + r.tally(|t| t.respawn).count(Manifestation::RankLost),
        r.shrink_recovery_percent(),
        r.respawn_recovery_percent(),
        r.app_recovery_percent(),
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    let _ = writeln!(
        out,
        "replication: {} message faults, {} baseline errors, {:.1}% masked by vote",
        r.replicas.len(),
        r.replica_errors(),
        r.masked_percent(),
    );
    out
}

/// Render the single-discipline focus view of an ft campaign (the CLI's
/// `ft --mode M`): one [`FtMode`] column's outcome tally and recovery
/// rate, instead of the full side-by-side table.
pub fn render_ft_focus(r: &FtResult, mode: FtMode) -> String {
    let (tally, trials, recovered) = match mode {
        FtMode::Baseline => (r.tally(|t| t.baseline), r.kills.len(), None),
        FtMode::Shrink => (
            r.tally(|t| t.shrink),
            r.kills.len(),
            Some(("recovered by harness shrink", r.shrink_recovery_percent())),
        ),
        FtMode::Respawn => (
            r.tally(|t| t.respawn),
            r.kills.len(),
            Some(("recovered by harness respawn", r.respawn_recovery_percent())),
        ),
        FtMode::App => (
            r.tally(|t| t.app),
            r.kills.len(),
            Some((
                "recovered by the application (fl-ulfm)",
                r.app_recovery_percent(),
            )),
        ),
        FtMode::Replicated => {
            let mut t = Tally::default();
            for x in &r.replicas {
                t.record(x.replicated);
            }
            (
                t,
                r.replicas.len(),
                Some(("masked by replica vote", r.masked_percent())),
            )
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} / mode {mode}: {trials} {} trials",
        r.app.name(),
        if mode == FtMode::Replicated {
            "message-fault"
        } else {
            "rank-kill"
        }
    );
    for m in Manifestation::ALL {
        let n = tally.count(m);
        if n > 0 {
            let _ = writeln!(out, "  {m:<22} {n:>5}");
        }
    }
    if let Some((what, pct)) = recovered {
        let _ = writeln!(out, "  {what}: {pct:.1}%");
    }
    out
}

/// Render an ft campaign as TSV: one row per recovery mode with full
/// outcome counts.
pub fn render_ft_tsv(r: &FtResult) -> String {
    let mut out = String::from("mode\ttrials");
    for m in Manifestation::ALL {
        let _ = write!(out, "\t{}", slug(m));
    }
    out.push_str("\trecovery_pct\n");
    let rows: [(&str, Tally, f64); 4] = [
        ("baseline", r.tally(|t| t.baseline), 0.0),
        ("shrink", r.tally(|t| t.shrink), r.shrink_recovery_percent()),
        (
            "respawn",
            r.tally(|t| t.respawn),
            r.respawn_recovery_percent(),
        ),
        ("app", r.tally(|t| t.app), r.app_recovery_percent()),
    ];
    for (mode, tally, pct) in rows {
        let _ = write!(out, "{mode}\t{}", tally.executions);
        for m in Manifestation::ALL {
            let _ = write!(out, "\t{}", tally.count(m));
        }
        let _ = writeln!(out, "\t{pct:.2}");
    }
    let mut rep_base = Tally::default();
    let mut rep_voted = Tally::default();
    for t in &r.replicas {
        rep_base.record(t.baseline);
        rep_voted.record(t.replicated);
    }
    for (mode, tally, pct) in [
        ("replica-baseline", rep_base, 0.0),
        ("replicated", rep_voted, r.masked_percent()),
    ] {
        let _ = write!(out, "{mode}\t{}", tally.executions);
        for m in Manifestation::ALL {
            let _ = write!(out, "\t{}", tally.count(m));
        }
        let _ = writeln!(out, "\t{pct:.2}");
    }
    out
}

/// Serialize an ft campaign as JSONL: one object per trial (kill trials
/// first, then replication trials), carrying every paired outcome.
pub fn ft_jsonl(r: &FtResult) -> String {
    let mut out = String::new();
    for (k, t) in r.kills.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"app\":\"{}\",\"kind\":\"kill\",\"trial\":{k},\"detail\":\"{}\",\"baseline\":\"{}\",\"shrink\":\"{}\",\"respawn\":\"{}\",\"respawns\":{},\"app_mode\":\"{}\",\"app_shrinks\":{},\"shrink_recovered\":{},\"respawn_recovered\":{},\"app_recovered\":{}}}",
            r.app.name(),
            t.detail,
            slug(t.baseline),
            slug(t.shrink),
            slug(t.respawn),
            t.respawns,
            slug(t.app),
            t.app_shrinks,
            t.shrink_recovered(),
            t.respawn_recovered(),
            t.app_recovered(),
        );
    }
    for (k, t) in r.replicas.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"app\":\"{}\",\"kind\":\"replica\",\"trial\":{k},\"detail\":\"{}\",\"baseline\":\"{}\",\"replicated\":\"{}\",\"votes\":{},\"masked\":{}}}",
            r.app.name(),
            t.detail,
            slug(t.baseline),
            slug(t.replicated),
            t.votes,
            t.masked(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::AppParams;

    fn ft(kind: AppKind, kills: u32, reps: u32, seed: u64) -> FtResult {
        let app = App::build(kind, AppParams::tiny(kind));
        run_ft_impl(
            &app,
            &CampaignConfig {
                seed,
                ..Default::default()
            },
            &FtPolicy::default(),
            kills,
            reps,
        )
    }

    #[test]
    fn kills_always_manifest_and_recover() {
        let r = ft(AppKind::Wavetoy, 8, 0, 0xF7);
        // A kill drawn inside the victim's lifetime always fires and,
        // without a detector, always strands the world.
        assert_eq!(r.kill_errors(), 8, "{:?}", r.kills);
        assert!(r.shrink_recovery_percent() >= 90.0, "shrink: {:?}", r.kills);
        assert!(
            r.respawn_recovery_percent() >= 90.0,
            "respawn: {:?}",
            r.kills
        );
    }

    #[test]
    fn replication_masks_manifesting_message_faults() {
        let r = ft(AppKind::Wavetoy, 0, 10, 0xF8);
        assert!(r.replica_errors() > 0, "{:?}", r.replicas);
        assert!(r.masked_percent() >= 90.0, "{:?}", r.replicas);
        // Masked trials actually voted someone out.
        assert!(r
            .replicas
            .iter()
            .filter(|t| t.masked())
            .all(|t| t.votes > 0));
    }

    #[test]
    fn jacobi3d_recovers_by_itself_in_app_mode() {
        // The fl-ulfm contract: the app that carries recovery code
        // survives the kill on its own; the paper's apps do not.
        let r = ft(AppKind::Jacobi3d, 6, 0, 0xA1);
        assert_eq!(r.kill_errors(), 6, "{:?}", r.kills);
        assert!(r.app_recovery_percent() >= 90.0, "{:?}", r.kills);
        let w = ft(AppKind::Wavetoy, 3, 0, 0xA2);
        assert_eq!(w.app_recovery_percent(), 0.0, "{:?}", w.kills);
    }

    #[test]
    fn ft_campaigns_are_reproducible() {
        let a = ft(AppKind::Wavetoy, 4, 4, 9);
        let b = ft(AppKind::Wavetoy, 4, 4, 9);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.replicas, b.replicas);
    }

    #[test]
    fn focus_renderer_covers_every_discipline() {
        let r = ft(AppKind::Wavetoy, 3, 3, 13);
        for mode in FtMode::ALL {
            let text = render_ft_focus(&r, mode);
            assert!(text.starts_with("wavetoy / mode "), "{text}");
            assert!(text.contains(mode.label()), "{text}");
        }
        assert!(render_ft_focus(&r, FtMode::Shrink).contains("harness shrink"));
        assert!(render_ft_focus(&r, FtMode::App).contains("fl-ulfm"));
        assert!(render_ft_focus(&r, FtMode::Replicated).contains("message-fault"));
    }

    #[test]
    fn renderers_cover_every_mode() {
        let r = ft(AppKind::Wavetoy, 4, 4, 11);
        let table = render_ft(&r, "ft demo");
        assert!(table.contains("kill-rank"));
        assert!(table.contains("replication:"));
        let tsv = render_ft_tsv(&r);
        assert_eq!(tsv.lines().count(), 7, "{tsv}");
        assert!(tsv.starts_with("mode\ttrials\tcorrect"));
        let jsonl = ft_jsonl(&r);
        assert_eq!(jsonl.lines().count(), 8);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
