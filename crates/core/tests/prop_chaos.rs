//! Chaos determinism, test-enforced: any chaos spec — whatever its
//! partition window, burst width, reorder delay or seed — must produce
//! a byte-identical record stream at 1 worker and 4 workers, and across
//! a kill + resume from an arbitrary prefix of the streamed file (the
//! same durability contract `engine_resume.rs` pins for plain
//! campaigns).

use fl_inject::{
    run_spec, sort_records_jsonl, CampaignSpec, ChaosPolicy, CompletedSlots, EngineControl,
    SpecMode, SpecOutcome, VecSink,
};
use proptest::prelude::*;

fn spec_with(policy: ChaosPolicy, seed: u64, threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(fl_apps::AppKind::Wavetoy);
    spec.tiny = true;
    spec.campaign.injections = 1;
    spec.campaign.seed = seed;
    spec.campaign.threads = threads;
    spec.mode = SpecMode::Chaos(policy);
    spec
}

/// Run the spec, returning (completion-order lines, canonical stream,
/// total guest instructions).
fn run(spec: &CampaignSpec, resume: Option<CompletedSlots>) -> (Vec<String>, String, u64) {
    let sink = VecSink::new(spec.app);
    let out = run_spec(spec, &sink, &EngineControl::new(), resume)
        .expect("uncontrolled chaos runs always complete");
    let SpecOutcome::Chaos(result) = out else {
        panic!("chaos spec must produce a chaos outcome");
    };
    let lines = sink.into_lines();
    let canonical = sort_records_jsonl(&(lines.join("\n") + "\n"));
    (lines, canonical, result.insns_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// One worker, four workers, and a resumed run killed at an
    /// arbitrary slot boundary (possibly with a torn tail line) all
    /// land on the same canonical record bytes and instruction totals.
    #[test]
    fn any_chaos_spec_is_deterministic_and_resumable(
        seed in 0u64..1 << 48,
        partition_lo in 16u64..128,
        partition_len in 1u64..512,
        reorder_max_delay in 1u64..96,
        burst_max in 2u16..4,
        node_ranks in 1u16..3,
        cut in 0usize..55,
        torn in any::<bool>(),
    ) {
        let policy = ChaosPolicy {
            partition_rounds: (partition_lo, partition_lo + partition_len),
            reorder_max_delay,
            burst_max,
            node_ranks,
            ..ChaosPolicy::default()
        };
        let spec1 = spec_with(policy, seed, 1);
        let (lines, canonical, insns) = run(&spec1, None);
        prop_assert_eq!(lines.len(), spec1.record_classes().len());

        let spec4 = spec_with(policy, seed, 4);
        let (_, canonical4, insns4) = run(&spec4, None);
        prop_assert_eq!(&canonical4, &canonical, "4-worker stream diverged");
        prop_assert_eq!(insns4, insns);

        // Kill after `cut` completed trials and resume from the
        // surviving file, as the campaign service would.
        let cut = cut.min(lines.len());
        let mut file = lines[..cut].join("\n");
        if cut > 0 {
            file.push('\n');
        }
        if torn {
            file.push_str("{\"app\":\"wavetoy\",\"class\":\"net");
        }
        let (slots, _skipped) = CompletedSlots::from_jsonl(
            &file,
            &spec4.record_classes(),
            spec4.record_injections(),
        );
        prop_assert_eq!(slots.len(), cut, "every surviving line must be adopted");
        let (fresh, _, insns_r) = run(&spec4, Some(slots));
        let mut all = String::new();
        for line in file.lines() {
            if fl_inject::parse_record_line(line).is_ok() {
                all.push_str(line);
                all.push('\n');
            }
        }
        for line in fresh {
            all.push_str(&line);
            all.push('\n');
        }
        prop_assert_eq!(&sort_records_jsonl(&all), &canonical,
            "record stream diverged after resume from {} lines (torn={})", cut, torn);
        prop_assert_eq!(insns_r, insns, "adopted slots must not re-execute");
    }
}
