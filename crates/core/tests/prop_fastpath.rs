//! Campaign-level zero-divergence, test-enforced: a campaign run on the
//! execution fast path — warm campaign-wide shared decoded store, epoch
//! snapshot forks handing children promoted superblocks — produces
//! record streams, per-class metrics and instruction totals **byte
//! identical** to the per-instruction slow path, at one worker and at
//! four.
//!
//! This is the contract that lets `faultlab campaign` turn the fast path
//! on by default: the speedup must be observationally free. The exec
//! cache telemetry (hit/side-exit counters) is deliberately excluded —
//! it is the one campaign output that *may* differ across paths and
//! worker counts, which is why it is emitted as trailing telemetry
//! rather than woven into the per-class rows.

use fl_inject::{
    run_spec, sort_records_jsonl, CampaignSpec, EngineControl, SpecOutcome, TargetClass, VecSink,
};
use proptest::prelude::*;

fn spec(seed: u64, fastpath: bool, threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(fl_apps::AppKind::Wavetoy);
    spec.tiny = true;
    spec.classes = vec![TargetClass::RegularReg, TargetClass::Stack];
    spec.campaign.injections = 4;
    spec.campaign.seed = seed;
    spec.campaign.threads = threads;
    spec.campaign.obs_capacity = 128;
    spec.campaign.fastpath = fastpath;
    spec
}

/// Run one campaign and return (canonical records, metrics, insns).
fn run(seed: u64, fastpath: bool, threads: usize) -> (String, String, u64) {
    let spec = spec(seed, fastpath, threads);
    let sink = VecSink::new(spec.app);
    let out = run_spec(&spec, &sink, &EngineControl::new(), None)
        .expect("uncontrolled run cannot stop early");
    let SpecOutcome::Campaign(result) = out else {
        panic!("campaign spec must produce a campaign outcome");
    };
    let records = sort_records_jsonl(&(sink.into_lines().join("\n") + "\n"));
    let metrics = result
        .metrics
        .expect("ring was configured")
        .to_jsonl(spec.app);
    (records, metrics, result.insns_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Warm-shared fast path ≡ slow path, at 1 and 4 workers.
    #[test]
    fn fastpath_campaign_is_byte_identical(seed in 0u64..1_000_000) {
        let (rec_fast1, met_fast1, insns_fast1) = run(seed, true, 1);
        let (rec_fast4, met_fast4, insns_fast4) = run(seed, true, 4);
        let (rec_slow1, met_slow1, insns_slow1) = run(seed, false, 1);
        let (rec_slow4, _, insns_slow4) = run(seed, false, 4);
        // Worker count is invisible.
        prop_assert_eq!(&rec_fast1, &rec_fast4);
        prop_assert_eq!(&rec_slow1, &rec_slow4);
        // The execution path is invisible.
        prop_assert_eq!(&rec_fast1, &rec_slow1);
        prop_assert_eq!(&met_fast1, &met_slow1);
        prop_assert_eq!(&met_fast1, &met_fast4);
        prop_assert_eq!(insns_fast1, insns_slow1);
        prop_assert_eq!(insns_fast1, insns_fast4);
        prop_assert_eq!(insns_slow1, insns_slow4);
    }
}
