//! Resume invariant, test-enforced: a campaign killed at an arbitrary
//! trial boundary and resumed from its streamed record file produces a
//! record stream and metrics **bit-identical** to an uninterrupted run.
//!
//! This is the durability contract `faultlab serve` relies on. The
//! property test models the kill exactly as the service experiences it:
//! the on-disk `records.jsonl` holds some prefix of the completion-order
//! stream — possibly ending in a torn, half-written line — and the
//! restarted engine must adopt what parses, re-run the rest, and land on
//! the same canonical bytes.

use fl_inject::{
    run_spec, sort_records_jsonl, CampaignSpec, CompletedSlots, EngineControl, SpecOutcome,
    TargetClass, VecSink,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const INJECTIONS: u32 = 6;

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(fl_apps::AppKind::Wavetoy);
    spec.tiny = true;
    spec.classes = vec![
        TargetClass::RegularReg,
        TargetClass::Stack,
        TargetClass::Message,
    ];
    spec.campaign.injections = INJECTIONS;
    spec.campaign.seed = 0x5E5;
    spec.campaign.threads = 2;
    spec.campaign.obs_capacity = 128;
    spec
}

struct Reference {
    /// Completion-order record lines of the uninterrupted run.
    lines: Vec<String>,
    /// Canonical (slot-sorted) record stream.
    canonical: String,
    /// Metrics JSONL of the uninterrupted run.
    metrics: String,
    insns_total: u64,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let spec = spec();
        let sink = VecSink::new(spec.app);
        let out = run_spec(&spec, &sink, &EngineControl::new(), None)
            .expect("uncontrolled run cannot stop early");
        let SpecOutcome::Campaign(result) = out else {
            panic!("campaign spec must produce a campaign outcome");
        };
        let lines = sink.into_lines();
        let canonical = sort_records_jsonl(&(lines.join("\n") + "\n"));
        Reference {
            lines,
            canonical,
            metrics: result
                .metrics
                .expect("ring was configured")
                .to_jsonl(spec.app),
            insns_total: result.insns_total,
        }
    })
}

/// Resume from `file` (the surviving records.jsonl contents) and return
/// the canonical stream of adopted + freshly-run records, plus the
/// resumed slot count and the finished result's metrics/insns.
fn resume_from(file: &str) -> (String, usize, String, u64) {
    let spec = spec();
    let (slots, _skipped) =
        CompletedSlots::from_jsonl(file, &spec.classes, spec.campaign.injections);
    let adopted = slots.len();
    let sink = VecSink::new(spec.app);
    let out = run_spec(&spec, &sink, &EngineControl::new(), Some(slots))
        .expect("uncontrolled resume cannot stop early");
    let SpecOutcome::Campaign(result) = out else {
        panic!("campaign spec must produce a campaign outcome");
    };
    // The service appends fresh lines after the adopted ones; the final
    // file is the adoptable prefix plus the new completions.
    let mut all = String::new();
    for line in file.lines() {
        if fl_inject::parse_record_line(line).is_ok() {
            all.push_str(line);
            all.push('\n');
        }
    }
    for line in sink.into_lines() {
        all.push_str(&line);
        all.push('\n');
    }
    (
        sort_records_jsonl(&all),
        adopted,
        result
            .metrics
            .expect("ring was configured")
            .to_jsonl(spec.app),
        result.insns_total,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill after any number of completed trials: the resumed run adopts
    /// exactly the surviving slots and reproduces the canonical stream
    /// and metrics byte for byte.
    #[test]
    fn resume_from_any_kill_point_is_bit_identical(cut in 0usize..19, torn in any::<bool>()) {
        let r = reference();
        let cut = cut.min(r.lines.len());
        let mut file = r.lines[..cut].join("\n");
        if cut > 0 {
            file.push('\n');
        }
        if torn {
            // A kill mid-write leaves a torn, newline-less tail.
            file.push_str("{\"app\":\"wavetoy\",\"class\":\"regu");
        }
        let (canonical, adopted, metrics, insns) = resume_from(&file);
        prop_assert_eq!(adopted, cut, "every surviving line must be adopted");
        prop_assert_eq!(&canonical, &r.canonical,
            "record stream diverged after resume from {} lines (torn={})", cut, torn);
        prop_assert_eq!(&metrics, &r.metrics,
            "metrics diverged after resume from {} lines (torn={})", cut, torn);
        prop_assert_eq!(insns, r.insns_total);
    }
}

/// The degenerate endpoints, pinned deterministically: resuming from a
/// complete file re-runs nothing; resuming from nothing runs everything.
#[test]
fn resume_endpoints_hold() {
    let r = reference();
    let full = r.lines.join("\n") + "\n";
    let (canonical, adopted, metrics, _) = resume_from(&full);
    assert_eq!(adopted, r.lines.len());
    assert_eq!(canonical, r.canonical);
    assert_eq!(metrics, r.metrics);

    let (canonical, adopted, _, _) = resume_from("");
    assert_eq!(adopted, 0);
    assert_eq!(canonical, r.canonical);
}
