//! Observability invariants, test-enforced:
//!
//! * **Fork/cold bit-identity** — a trial forked from an epoch snapshot
//!   cache must emit an event stream bit-identical to the same trial run
//!   cold from `main`. The event log is part of machine snapshots, so
//!   this holds structurally; the property test checks it end to end
//!   across classes and trial seeds.
//! * **Golden JSONL** — the serialized timeline of one pinned trial is
//!   locked to a checked-in golden file, so any drift in the event
//!   schema, emission points or ordering is a visible diff.

// These properties deliberately exercise the deprecated driver-level
// entry point: cold/forked bit-identity is a property of the driver,
// below the builder/spec veneer.
#![allow(deprecated)]

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{run_trial_traced, trial_seed, Dictionaries, TargetClass};
use fl_snap::EpochCache;
use proptest::prelude::*;
use std::sync::OnceLock;

const OBS_CAPACITY: u32 = 512;
const EPOCH_ROUNDS: u32 = 8;

struct Fixture {
    app: App,
    golden: fl_apps::Golden,
    dicts: Dictionaries,
    budget: u64,
    epochs: EpochCache,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let golden = app.golden(2_000_000_000);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let dicts = Dictionaries::build(&app);
        // The cache must match the cold path's recording capacity: the
        // golden prefix's events are part of the restored state.
        let mut wcfg = app.world_config(budget);
        wcfg.machine.obs_capacity = OBS_CAPACITY;
        let epochs = EpochCache::build(&app.image, wcfg, EPOCH_ROUNDS);
        Fixture {
            app,
            golden,
            dicts,
            budget,
            epochs,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forked and cold runs of the same trial retain byte-for-byte the
    /// same events (same kinds, clocks, sequence numbers, drop counts)
    /// and produce the same record.
    #[test]
    fn forked_event_stream_is_bit_identical_to_cold(class_idx in 0usize..8, k in 0u32..12) {
        let f = fixture();
        let class = TargetClass::ALL[class_idx];
        let seed = trial_seed(0x0B5_0B5, class_idx, k);
        let cold = run_trial_traced(
            &f.app, &f.golden, &f.dicts, class, seed, f.budget, None, OBS_CAPACITY,
        );
        let forked = run_trial_traced(
            &f.app, &f.golden, &f.dicts, class, seed, f.budget, Some(&f.epochs), OBS_CAPACITY,
        );
        prop_assert_eq!(&cold.record, &forked.record,
            "{} trial {}: outcome diverged between cold and forked", class.name(), k);
        prop_assert_eq!(&cold.streams, &forked.streams,
            "{} trial {}: event streams diverged between cold and forked", class.name(), k);
        prop_assert_eq!(cold.events_jsonl(), forked.events_jsonl());
    }
}

#[test]
fn events_jsonl_matches_golden_file() {
    let f = fixture();
    let trace = run_trial_traced(
        &f.app,
        &f.golden,
        &f.dicts,
        TargetClass::RegularReg,
        trial_seed(0xFA17, 0, 0),
        f.budget,
        None,
        OBS_CAPACITY,
    );
    let jsonl = trace.events_jsonl();
    assert!(
        !jsonl.is_empty(),
        "an observed wavetoy trial must retain events"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/events_wavetoy_reg.jsonl"
    );
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; run with REGEN_GOLDEN=1 to create it");
    assert_eq!(
        jsonl, golden,
        "event JSONL drifted from the golden file; if the schema change is \
         intentional, rerun this test with REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn events_jsonl_lines_are_well_formed() {
    let f = fixture();
    let trace = run_trial_traced(
        &f.app,
        &f.golden,
        &f.dicts,
        TargetClass::Message,
        trial_seed(0xFA17, 7, 3),
        f.budget,
        None,
        OBS_CAPACITY,
    );
    for line in trace.events_jsonl().lines() {
        assert!(
            line.starts_with("{\"rank\":") && line.ends_with('}'),
            "{line}"
        );
        for key in ["\"seq\":", "\"clock\":", "\"kind\":\""] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}
