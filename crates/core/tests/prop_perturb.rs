//! Perturb determinism, test-enforced: any perturb spec — whatever its
//! tax severity, hog share, stall window, detector cadence or seed —
//! must produce a byte-identical record stream at 1 worker and 4
//! workers, and across a kill + resume from an arbitrary prefix of the
//! streamed file (the same durability contract `prop_chaos.rs` pins
//! for chaos campaigns). Interference faults bend *time*, so this is
//! the direct check that they draw on the deterministic clocks and
//! never on wall time.

use fl_inject::{
    run_spec, sort_records_jsonl, CampaignSpec, CompletedSlots, EngineControl, PerturbPolicy,
    SpecMode, SpecOutcome, VecSink,
};
use proptest::prelude::*;

fn spec_with(policy: PerturbPolicy, seed: u64, threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(fl_apps::AppKind::Wavetoy);
    spec.tiny = true;
    spec.campaign.injections = 1;
    spec.campaign.seed = seed;
    spec.campaign.threads = threads;
    spec.mode = SpecMode::Perturb(policy);
    spec
}

/// Run the spec, returning (completion-order lines, canonical stream,
/// total guest instructions).
fn run(spec: &CampaignSpec, resume: Option<CompletedSlots>) -> (Vec<String>, String, u64) {
    let sink = VecSink::new(spec.app);
    let out = run_spec(spec, &sink, &EngineControl::new(), resume)
        .expect("uncontrolled perturb runs always complete");
    let SpecOutcome::Perturb(result) = out else {
        panic!("perturb spec must produce a perturb outcome");
    };
    let lines = sink.into_lines();
    let canonical = sort_records_jsonl(&(lines.join("\n") + "\n"));
    (lines, canonical, result.insns_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// One worker, four workers, and a resumed run killed at an
    /// arbitrary slot boundary (possibly with a torn tail line) all
    /// land on the same canonical record bytes and instruction totals.
    #[test]
    fn any_perturb_spec_is_deterministic_and_resumable(
        seed in 0u64..1 << 48,
        tax_lo in 900u32..960,
        tax_span in 1u32..35,
        tax_rounds_lo in 64u64..512,
        tax_rounds_span in 1u64..512,
        hog_lo in 300u32..700,
        hog_span in 1u32..200,
        hog_node_ranks in 1u16..3,
        stall_hi in 2u64..8,
        suspect_rounds in 16u64..48,
        cut in 0usize..16,
        torn in any::<bool>(),
    ) {
        let policy = PerturbPolicy {
            suspect_rounds,
            tax_permille: (tax_lo, tax_lo + tax_span),
            tax_rounds: (tax_rounds_lo, tax_rounds_lo + tax_rounds_span),
            hog_share_permille: (hog_lo, hog_lo + hog_span),
            hog_node_ranks,
            stall_per_access: (1, stall_hi),
            ..PerturbPolicy::default()
        };
        let spec1 = spec_with(policy, seed, 1);
        let (lines, canonical, insns) = run(&spec1, None);
        prop_assert_eq!(lines.len(), spec1.record_classes().len());

        let spec4 = spec_with(policy, seed, 4);
        let (_, canonical4, insns4) = run(&spec4, None);
        prop_assert_eq!(&canonical4, &canonical, "4-worker stream diverged");
        prop_assert_eq!(insns4, insns);

        // Kill after `cut` completed trials and resume from the
        // surviving file, as the campaign service would.
        let cut = cut.min(lines.len());
        let mut file = lines[..cut].join("\n");
        if cut > 0 {
            file.push('\n');
        }
        if torn {
            file.push_str("{\"app\":\"wavetoy\",\"class\":\"sch");
        }
        let (slots, _skipped) = CompletedSlots::from_jsonl(
            &file,
            &spec4.record_classes(),
            spec4.record_injections(),
        );
        prop_assert_eq!(slots.len(), cut, "every surviving line must be adopted");
        let (fresh, _, insns_r) = run(&spec4, Some(slots));
        let mut all = String::new();
        for line in file.lines() {
            if fl_inject::parse_record_line(line).is_ok() {
                all.push_str(line);
                all.push('\n');
            }
        }
        for line in fresh {
            all.push_str(&line);
            all.push('\n');
        }
        prop_assert_eq!(&sort_records_jsonl(&all), &canonical,
            "record stream diverged after resume from {} lines (torn={})", cut, torn);
        prop_assert_eq!(insns_r, insns, "adopted slots must not re-execute");
    }
}
