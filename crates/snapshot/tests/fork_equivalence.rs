//! The crate's load-bearing invariant: a world forked from a snapshot is
//! bit-identical to a world that executed the same prefix cold. Every
//! fast-path result in the campaign layer rests on this.

use fl_apps::{App, AppKind, AppParams};
use fl_mpi::{MpiWorld, WorldExit};
use fl_snap::{EpochCache, RecoveryConfig};

const BUDGET: u64 = 200_000_000;

fn tiny(kind: AppKind) -> App {
    App::build(kind, AppParams::tiny(kind))
}

/// Run `n` scheduler rounds (stopping early if the world finishes).
fn run_rounds(w: &mut MpiWorld, n: u64) -> Option<WorldExit> {
    for _ in 0..n {
        if let Some(e) = w.run_round() {
            return Some(e);
        }
    }
    None
}

#[test]
fn restore_is_bit_identical_immediately() {
    for kind in [AppKind::Wavetoy, AppKind::Climsim] {
        let app = tiny(kind);
        let mut w = app.world(BUDGET);
        assert!(
            run_rounds(&mut w, 40).is_none(),
            "{}: finished too early",
            kind.name()
        );
        let snap = w.snapshot();
        let restored = snap.restore();
        assert!(
            restored.snapshot() == snap,
            "{}: restore() changed world state",
            kind.name()
        );
    }
}

#[test]
fn forked_world_stays_bit_identical_while_stepping() {
    let app = tiny(AppKind::Wavetoy);
    let mut cold = app.world(BUDGET);
    run_rounds(&mut cold, 25);
    let snap = cold.snapshot();
    let mut forked = snap.restore();
    // Step both worlds in lockstep and compare complete state at several
    // depths past the fork point.
    for leg in [1u64, 3, 10, 30] {
        let a = run_rounds(&mut cold, leg);
        let b = run_rounds(&mut forked, leg);
        assert_eq!(a, b, "exit divergence {leg} rounds past fork");
        assert!(
            cold.snapshot() == forked.snapshot(),
            "state divergence {leg} rounds past fork"
        );
        if a.is_some() {
            break;
        }
    }
}

#[test]
fn forked_run_completes_like_cold_run() {
    for kind in [AppKind::Wavetoy, AppKind::Climsim] {
        let app = tiny(kind);
        let golden = app.golden(BUDGET);

        let mut w = app.world(BUDGET);
        run_rounds(&mut w, 60);
        let mut forked = w.snapshot().restore();
        let exit = forked.run();
        assert_eq!(exit, WorldExit::Clean, "{}", kind.name());
        assert_eq!(
            app.comparable_output(&forked),
            golden.output,
            "{}: forked run output differs from golden",
            kind.name()
        );
    }
}

#[test]
fn sibling_forks_are_isolated() {
    // Two forks of one snapshot must not see each other's writes: run one
    // to completion, then verify the other still matches the capture and
    // still produces the golden output.
    let app = tiny(AppKind::Wavetoy);
    let golden = app.golden(BUDGET);
    let mut w = app.world(BUDGET);
    run_rounds(&mut w, 30);
    let snap = w.snapshot();

    let mut first = snap.restore();
    let second = snap.restore();
    assert_eq!(first.run(), WorldExit::Clean);
    assert!(
        second.snapshot() == snap,
        "sibling fork was mutated by the other fork"
    );

    let mut second = second;
    assert_eq!(second.run(), WorldExit::Clean);
    assert_eq!(app.comparable_output(&second), golden.output);
}

#[test]
fn cow_pages_are_shared_until_written() {
    let app = tiny(AppKind::Wavetoy);
    let mut w = app.world(BUDGET);
    run_rounds(&mut w, 20);
    let a = w.snapshot();
    let b = a.clone();
    for r in 0..a.nranks() {
        let ma = &a.machine(r).mem;
        let mb = &b.machine(r).mem;
        let resident = ma.resident_pages();
        assert!(resident > 0);
        assert_eq!(
            ma.pages_shared_with(mb),
            resident,
            "rank {r}: clone must share every resident page"
        );
    }
    // Running a fork un-shares only the pages it writes.
    let mut forked = a.restore();
    run_rounds(&mut forked, 5);
    let after = forked.snapshot();
    for r in 0..a.nranks() {
        let shared = after.machine(r).mem.pages_shared_with(&a.machine(r).mem);
        let resident = a.machine(r).mem.resident_pages();
        assert!(
            shared < resident,
            "rank {r}: five rounds of execution wrote no page at all?"
        );
        assert!(
            shared > 0,
            "rank {r}: text/data pages should still be shared"
        );
    }
}

#[test]
fn epoch_cache_covers_golden_run() {
    let app = tiny(AppKind::Wavetoy);
    let cache = EpochCache::build(&app.image, app.world_config(BUDGET), 8);
    assert_eq!(*cache.golden_exit(), WorldExit::Clean);
    assert!(
        cache.rounds() > 8,
        "tiny wavetoy should take more than one epoch interval"
    );
    assert_eq!(cache.len(), 1 + (cache.rounds() / 8) as usize);

    // Epoch 0 is pristine: eligible for any fire time >= 1.
    let e0 = &cache.epochs()[0];
    assert_eq!(e0.round, 0);
    assert_eq!(e0.rank_insns(0), 0);
    assert!(cache.best_for_insns(0, 1).is_some());

    // Eligibility is strict: an epoch is returned only if the target rank
    // is strictly before the fire point.
    let golden = app.golden(BUDGET);
    let late = golden.insns[1] - 1;
    let best = cache
        .best_for_insns(1, late)
        .expect("late fire time must have an epoch");
    assert!(best.rank_insns(1) < late);
    // And it is the *latest* such epoch.
    for e in cache.epochs() {
        if e.rank_insns(1) < late {
            assert!(e.rank_insns(1) <= best.rank_insns(1));
        }
    }

    // Message eligibility uses <= (fault strikes a message that arrives
    // after the capture).
    let vol = golden.recv_bytes[2];
    assert!(cache.best_for_recv(2, vol - 1).is_some());
    let b0 = cache
        .best_for_recv(2, 0)
        .expect("offset 0 must match the pristine epoch");
    assert_eq!(b0.rank_received_bytes(2), 0);
}

#[test]
fn injection_on_forked_world_fires() {
    // Arm a register fault on a forked world and check it still
    // manifests — the campaign fast path in one line.
    use fl_mpi::PendingInjection;
    let app = tiny(AppKind::Wavetoy);
    let golden = app.golden(BUDGET);
    let cache = EpochCache::build(&app.image, app.world_config(BUDGET), 8);
    let rank = 0u16;
    let at = golden.insns[0] / 2;
    let epoch = cache.best_for_insns(rank, at).unwrap();
    let mut w = epoch.snap.restore();
    w.set_injection(PendingInjection::once(
        rank,
        at,
        |m: &mut fl_machine::Machine| {
            // Clobber EIP: guaranteed wild transfer.
            m.cpu.eip ^= 0x4000_0000;
        },
    ));
    let exit = w.run();
    assert_ne!(exit, WorldExit::Clean, "EIP clobber must manifest");
}

#[test]
fn recovery_restores_lost_work() {
    let app = tiny(AppKind::Wavetoy);
    let report = fl_snap::run_recovery(
        &app.image,
        app.world_config(BUDGET),
        RecoveryConfig {
            checkpoint_every: 8,
            kill_rank: 1,
            kill_round: 30,
        },
    );
    assert!(
        matches!(report.crash_exit, WorldExit::Crashed { .. }),
        "kill must crash the job, got {:?}",
        report.crash_exit
    );
    assert_eq!(report.recovered_exit, WorldExit::Clean);
    assert!(report.recovered, "transient kill must be fully recovered");
    assert!(report.checkpoint_round <= 30);
    assert!(
        report.lost_rounds < 8,
        "lost work exceeds the checkpoint interval"
    );
    assert!(report.checkpoints_taken >= 2);
}
