//! Property tests for the snapshot invariants, across randomly generated
//! FL programs and randomly chosen snapshot points:
//!
//! * capture → restore → step N is bit-identical to stepping the
//!   original machine N instructions;
//! * copy-on-write forks are isolated — running one fork to completion
//!   never perturbs its siblings — while still sharing unwritten pages.

use fl_lang::compile;
use fl_machine::{Exit, Machine, MachineConfig};
use proptest::prelude::*;

/// A small expression AST rendered to FL source (the prop_lang idiom):
/// enough to produce varied code, heap-free and always terminating.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn to_fl(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_fl(), b.to_fl()),
            E::Sub(a, b) => format!("({} - {})", a.to_fl(), b.to_fl()),
            E::Mul(a, b) => format!("({} * {})", a.to_fl(), b.to_fl()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn machine_for(e: &E) -> Machine {
    let src = format!("fn main() {{ print_int({}); }}", e.to_fl());
    let img = compile(&src).expect("generated program must compile");
    Machine::load(
        &img,
        MachineConfig {
            budget: 1_000_000,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot → to_machine → run(N) ≡ run(N) on the original, at any
    /// split point of any generated program.
    #[test]
    fn snapshot_restore_step_is_identity(e in arb_expr(), split in 1u64..300, leg in 1u64..300) {
        let mut a = machine_for(&e);
        let first = a.run(split);
        let snap = a.snapshot();
        let mut b = snap.to_machine();
        prop_assert!(b.snapshot() == snap, "restore is not the identity");
        if first == Exit::Quantum {
            let ea = a.run(leg);
            let eb = b.run(leg);
            prop_assert_eq!(ea, eb, "exit divergence {} insns past the fork", leg);
            prop_assert!(a.snapshot() == b.snapshot(),
                "state divergence {} insns past the fork", leg);
        }
    }

    /// Writes in one fork never leak into a sibling: run one restored
    /// machine to completion, then verify the sibling still equals the
    /// capture and still runs exactly like the original.
    #[test]
    fn cow_forks_are_isolated(e in arb_expr(), split in 1u64..200) {
        let mut a = machine_for(&e);
        let first = a.run(split);
        let snap = a.snapshot();

        let mut hot = snap.to_machine();
        let cold = snap.to_machine();
        let _ = hot.run(u64::MAX); // run fork 1 to completion (mutates freely)

        prop_assert!(cold.snapshot() == snap,
            "sibling fork changed without being stepped");
        if first == Exit::Quantum {
            let mut cold = cold;
            let ea = a.run(u64::MAX);
            let ec = cold.run(u64::MAX);
            prop_assert_eq!(ea, ec);
            prop_assert!(a.snapshot() == cold.snapshot(),
                "fork 1's writes leaked into fork 2");
        }
    }

    /// Clones of a snapshot share every resident page until someone
    /// writes — the memory-cost claim behind epoch caching.
    #[test]
    fn snapshot_clones_share_all_pages(e in arb_expr(), split in 1u64..200) {
        let mut a = machine_for(&e);
        let _ = a.run(split);
        let s1 = a.snapshot();
        let s2 = s1.clone();
        let resident = s1.mem.resident_pages();
        prop_assert!(resident > 0);
        prop_assert_eq!(s1.mem.pages_shared_with(&s2.mem), resident);
    }
}
