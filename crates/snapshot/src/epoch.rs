//! Epoch snapshot cache: periodic checkpoints of the golden run that
//! injection trials fork from instead of re-executing the fault-free
//! prefix.

use fl_machine::{ProgramImage, SharedCode};
use fl_mpi::{MpiWorld, WorldConfig, WorldExit, WorldSnapshot};

/// One checkpoint of the golden world, taken at a scheduler-round
/// boundary.
#[derive(Clone)]
pub struct Epoch {
    /// The captured world.
    pub snap: WorldSnapshot,
    /// Scheduler rounds completed when the capture was taken.
    pub round: u64,
}

impl Epoch {
    /// Rank-local instructions retired at capture time.
    pub fn rank_insns(&self, rank: u16) -> u64 {
        self.snap.rank_insns(rank)
    }

    /// Cumulative channel bytes received by `rank` at capture time.
    pub fn rank_received_bytes(&self, rank: u16) -> u64 {
        self.snap.rank_received_bytes(rank)
    }
}

/// Checkpoints of one application's golden run, ordered by round.
///
/// Epoch 0 is always the pristine just-loaded world (zero instructions
/// retired anywhere), so every trial has at least one usable epoch and
/// even "cold" forks skip the program-image load.
pub struct EpochCache {
    epochs: Vec<Epoch>,
    exit: WorldExit,
    rounds: u64,
}

impl EpochCache {
    /// Run the golden world to completion, capturing a checkpoint every
    /// `every_rounds` scheduler rounds (and one before the first round).
    ///
    /// # Panics
    ///
    /// Panics if `every_rounds` is zero.
    pub fn build(image: &ProgramImage, cfg: WorldConfig, every_rounds: u32) -> EpochCache {
        EpochCache::build_with_code(image, cfg, every_rounds, None)
    }

    /// Like [`EpochCache::build`], but run the golden world against a
    /// campaign-wide [`SharedCode`] store so every epoch snapshot hands
    /// its forks warm decoded caches (and superblocks promoted during
    /// the golden run carry straight into the trials).
    pub fn build_with_code(
        image: &ProgramImage,
        cfg: WorldConfig,
        every_rounds: u32,
        code: Option<&SharedCode>,
    ) -> EpochCache {
        assert!(every_rounds > 0, "every_rounds must be nonzero");
        let mut world = MpiWorld::new_with_code(image, cfg, code);
        let mut epochs = vec![Epoch {
            snap: world.snapshot(),
            round: 0,
        }];
        let mut rounds: u64 = 0;
        let exit = loop {
            if let Some(e) = world.run_round() {
                break e;
            }
            rounds += 1;
            if rounds.is_multiple_of(every_rounds as u64) {
                epochs.push(Epoch {
                    snap: world.snapshot(),
                    round: rounds,
                });
            }
        };
        EpochCache {
            epochs,
            exit,
            rounds,
        }
    }

    /// How the golden run ended (clean for a healthy application).
    pub fn golden_exit(&self) -> &WorldExit {
        &self.exit
    }

    /// Total scheduler rounds the golden run took.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the cache holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// All checkpoints, oldest first.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Latest epoch usable for a register/memory trial that fires at
    /// rank-local instruction `at_insns` on `rank`: the target rank must
    /// not yet have reached the fire point (strictly fewer instructions
    /// retired), so the injection still fires at exactly `at_insns` after
    /// the fork.
    pub fn best_for_insns(&self, rank: u16, at_insns: u64) -> Option<&Epoch> {
        self.epochs
            .iter()
            .rev()
            .find(|e| e.rank_insns(rank) < at_insns)
    }

    /// Latest epoch usable for a message trial that strikes cumulative
    /// received-byte offset `at_recv_byte` on `rank`: the struck byte
    /// must not have been ingested yet (`<=` — the fault fires on the
    /// message *containing* the offset, which arrives after the capture).
    pub fn best_for_recv(&self, rank: u16, at_recv_byte: u64) -> Option<&Epoch> {
        self.epochs
            .iter()
            .rev()
            .find(|e| e.rank_received_bytes(rank) <= at_recv_byte)
    }
}
