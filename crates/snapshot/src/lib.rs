//! # fl-snap — deterministic world checkpointing and snapshot-forked runs
//!
//! The paper's experimental procedure tears the cluster down to a clean
//! state between injections and replays the fault-free prefix of every
//! trial from scratch (§4.3). Because the FaultLab substrate is fully
//! deterministic, that prefix is *redundant work*: every trial of a
//! deterministic application executes bit-identical state up to its
//! injection point. This crate removes the redundancy.
//!
//! Three layers:
//!
//! * **Snapshots** — [`MachineSnapshot`] (registers, EFLAGS, EIP, the
//!   full x87 state, copy-on-write memory pages, malloc-runtime state)
//!   and [`WorldSnapshot`] (per-rank machines plus scheduler status,
//!   in-flight channel messages, sequence counters and the scheduling
//!   RNG). Both live in their home crates — `fl-machine` and `fl-mpi` —
//!   because they need private-field access; this crate re-exports them
//!   and builds policy on top.
//! * **[`EpochCache`]** — run the golden (fault-free) world once,
//!   checkpointing every K scheduler rounds. A trial that injects at
//!   rank-local instruction `t` then *forks* from the latest epoch whose
//!   target rank had retired fewer than `t` instructions, skipping the
//!   shared prefix entirely. Page-granular copy-on-write means N
//!   concurrent forks share every page none of them has written.
//! * **[`recovery`]** — the checkpoint/restart experiment: kill a rank
//!   mid-run, restore the world from the latest checkpoint, and measure
//!   what was recovered versus lost.
//!
//! Forking is only valid for deterministic applications (wavetoy,
//! climsim). Moldyn re-seeds its arrival-order shuffle per trial
//! (§4.2.2), so its trials diverge from the golden prefix at the first
//! scheduler round and must run cold; the campaign layer enforces this.

pub mod epoch;
pub mod recovery;

pub use epoch::{Epoch, EpochCache};
pub use fl_machine::{MachineSnapshot, MemorySnapshot};
pub use fl_mpi::WorldSnapshot;
pub use recovery::{run_recovery, RecoveryConfig, RecoveryReport};
