//! Checkpoint/restart recovery: the classic defence the paper's §8
//! discussion motivates. Kill a rank mid-run, roll the whole world back
//! to the latest checkpoint, re-execute, and measure what the rollback
//! recovered versus what was lost.
//!
//! The fault model here is a *transient* node loss: the restored world is
//! re-run without re-arming the fault, so a successful recovery ends with
//! output bit-identical to the fault-free run.

use crate::epoch::Epoch;
use fl_machine::{ProgramImage, KERNEL_BASE};
use fl_mpi::{MpiWorld, WorldConfig, WorldExit};

/// Parameters of one recovery experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Scheduler rounds between checkpoints.
    pub checkpoint_every: u32,
    /// Rank whose process is killed.
    pub kill_rank: u16,
    /// Scheduler round after which the kill is applied.
    pub kill_round: u64,
}

/// What one recovery experiment observed.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Rounds the fault-free run took.
    pub golden_rounds: u64,
    /// How the faulty run ended (a crash when the kill landed in time).
    pub crash_exit: WorldExit,
    /// Round of the checkpoint the world was restored from.
    pub checkpoint_round: u64,
    /// Checkpoints taken before the kill.
    pub checkpoints_taken: usize,
    /// Rounds of work between the restored checkpoint and the kill —
    /// re-executed after rollback, i.e. lost to the fault.
    pub lost_rounds: u64,
    /// How the restored re-run ended.
    pub recovered_exit: WorldExit,
    /// True when the re-run completed cleanly with output bit-identical
    /// to the fault-free run.
    pub recovered: bool,
}

/// Rank-0 output streams, the recovery correctness criterion.
fn outputs(w: &MpiWorld) -> (Vec<u8>, Vec<u8>) {
    let m = w.machine(0);
    (m.outfile.clone(), m.console.clone())
}

/// Run a world to completion, counting scheduler rounds.
fn run_counting(w: &mut MpiWorld) -> (WorldExit, u64) {
    let mut rounds = 0u64;
    loop {
        if let Some(e) = w.run_round() {
            return (e, rounds);
        }
        rounds += 1;
    }
}

/// Execute one checkpoint/restart experiment.
///
/// Three phases: (1) a fault-free reference run; (2) a checkpointed run
/// in which `kill_rank`'s instruction pointer is thrown into kernel
/// space after `kill_round` rounds — the deterministic stand-in for a
/// node loss, guaranteed to SIGSEGV and abort the job; (3) restore from
/// the latest checkpoint and re-run to completion.
///
/// # Panics
///
/// Panics if `checkpoint_every` is zero or `kill_rank` is out of range.
pub fn run_recovery(
    image: &ProgramImage,
    cfg: WorldConfig,
    rcfg: RecoveryConfig,
) -> RecoveryReport {
    assert!(
        rcfg.checkpoint_every > 0,
        "checkpoint_every must be nonzero"
    );
    assert!(rcfg.kill_rank < cfg.nranks, "kill_rank out of range");

    let mut golden_world = MpiWorld::new(image, cfg);
    let (_, golden_rounds) = run_counting(&mut golden_world);
    let golden_out = outputs(&golden_world);

    // Checkpointed faulty run.
    let mut world = MpiWorld::new(image, cfg);
    let mut latest = Epoch {
        snap: world.snapshot(),
        round: 0,
    };
    let mut checkpoints_taken = 1usize;
    let mut rounds = 0u64;
    let mut killed_at = None;
    let crash_exit = loop {
        if let Some(e) = world.run_round() {
            break e;
        }
        rounds += 1;
        if killed_at.is_none() && rounds.is_multiple_of(rcfg.checkpoint_every as u64) {
            latest = Epoch {
                snap: world.snapshot(),
                round: rounds,
            };
            checkpoints_taken += 1;
        }
        if killed_at.is_none() && rounds >= rcfg.kill_round {
            // Node loss: the next fetch on this rank faults in kernel
            // space and MPICH-style crash containment kills the job.
            world.machine_mut(rcfg.kill_rank).cpu.eip = KERNEL_BASE + 4;
            killed_at = Some(rounds);
        }
    };

    // Rollback and transient re-run.
    let mut restored = latest.snap.restore();
    let (recovered_exit, _) = run_counting(&mut restored);
    let recovered = recovered_exit == WorldExit::Clean && outputs(&restored) == golden_out;

    RecoveryReport {
        golden_rounds,
        crash_exit,
        checkpoint_round: latest.round,
        checkpoints_taken,
        lost_rounds: killed_at
            .unwrap_or(latest.round)
            .saturating_sub(latest.round),
        recovered_exit,
        recovered,
    }
}
