//! # fl-guard — guarded execution for FaultLab trials
//!
//! The paper's closing argument (§6–7) is that MPI error handlers catch
//! only argument-level faults; real resilience needs message-level
//! detection plus checkpoint/recovery. This crate is that machinery,
//! built from parts the lab already has:
//!
//! * **Channel integrity** — every wire message carries a CRC32 over its
//!   live header fields and payload (`fl-mpi`); with
//!   [`fl_mpi::ChannelGuard`] enabled the receiving ADI verifies it,
//!   NACKs failures back to the sender's retransmit queue, and redelivers
//!   with exponential backoff. A §3.3 message flip becomes a retried
//!   delivery instead of a silent corruption or an "MPICH internal
//!   error" crash.
//! * **Progress watchdog** ([`Watchdog`]) — samples per-rank counters on
//!   the retired-block clock every few scheduler rounds and trips when
//!   no rank has done useful work (FLOPs or MPI calls, the §7 progress
//!   metrics) for a configured number of consecutive windows — turning
//!   multi-minute hangs into timely detections, long before the
//!   instruction budget expires.
//! * **Checkpoint-restart** ([`run_guarded`]) — periodic COW world
//!   checkpoints during the run; on any detected failure (CRC
//!   exhaustion, watchdog trip, MPI error, fatal signal, crash) roll
//!   back to the last checkpoint and re-execute, up to a bounded restart
//!   budget. Detection and recovery are timestamped on the fl-obs event
//!   clock (`crc_reject`, `retransmit`, `watchdog_trip`,
//!   `guard_restart`), so recovery latency is measurable per trial.
//!
//! Whether a rollback *recovers* depends on where the fault landed
//! relative to the last checkpoint: a transient fault that fired after
//! the checkpoint is erased by the rollback (clean re-run), while one
//! captured inside the checkpoint re-manifests deterministically until
//! the restart budget is exhausted. `fl-inject` classifies the first as
//! `Recovered` and the second as `DetectedByGuard`.

pub mod runner;
pub mod watchdog;

pub use runner::{run_guarded, GuardPolicy, GuardReport};
pub use watchdog::{Watchdog, WatchdogTrip};
