//! The progress watchdog: no-progress detection on the retired-block
//! clock (§7's progress metrics, promoted from offline analysis to a
//! live tripwire).
//!
//! Instructions and blocks keep retiring in a spin-loop hang, so raw
//! activity is not progress. The watchdog counts *useful* work — FLOPs
//! and MPI calls, the two §7 metrics every lab application exercises —
//! summed across ranks, and trips after a configured number of
//! consecutive sampling windows in which neither advanced anywhere in
//! the world. Global quiescence (deadlock) is caught by the scheduler
//! itself; the watchdog's value is the spinning rank that would
//! otherwise burn its whole instruction budget.

use fl_mpi::MpiWorld;

/// A watchdog detection: which rank to blame and how long the stall ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// The still-running rank with the *least* block-clock advance over
    /// the stalled interval — in a spin hang every other rank is blocked
    /// on the spinner, so the quietest live rank is the best suspect.
    pub victim: u16,
    /// Consecutive no-progress windows observed.
    pub windows: u32,
    /// Cluster-wide retired blocks at trip time (event-clock locating).
    pub blocks: u64,
}

/// Per-rank counters the watchdog tracks between windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RankSample {
    flops: u64,
    mpi_calls: u64,
    blocks: u64,
}

/// Sliding no-progress detector over whole-world samples.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Trip after this many consecutive windows without useful progress.
    pub stall_windows: u32,
    last: Option<Vec<RankSample>>,
    baseline: Option<Vec<RankSample>>,
    stalled: u32,
}

impl Watchdog {
    /// A watchdog that trips after `stall_windows` consecutive windows
    /// with no FLOP or MPI progress anywhere in the world.
    pub fn new(stall_windows: u32) -> Watchdog {
        Watchdog {
            stall_windows: stall_windows.max(1),
            last: None,
            baseline: None,
            stalled: 0,
        }
    }

    /// Forget all history (called after a rollback: the restored world's
    /// counters jumped backwards and must re-baseline).
    pub fn reset(&mut self) {
        self.last = None;
        self.baseline = None;
        self.stalled = 0;
    }

    /// Take the arm-time sample so the *first* sampling boundary already
    /// compares against it. Without priming, a hang already in effect at
    /// the first block-clock boundary is burned as the baseline sample
    /// and the trip fires one whole window late.
    pub fn prime(&mut self, world: &MpiWorld) {
        let now = Self::sample(world);
        self.baseline = Some(now.clone());
        self.last = Some(now);
        self.stalled = 0;
    }

    fn sample(world: &MpiWorld) -> Vec<RankSample> {
        (0..world.nranks())
            .map(|r| {
                let c = &world.machine(r).counters;
                RankSample {
                    flops: c.flops,
                    mpi_calls: c.mpi_calls,
                    blocks: c.blocks,
                }
            })
            .collect()
    }

    /// Feed one sampling window. Returns a trip when the stall threshold
    /// is reached (the caller decides what to do about it; the counter
    /// keeps running, so a caller that ignores trips sees one per window
    /// from then on).
    pub fn observe(&mut self, world: &MpiWorld) -> Option<WatchdogTrip> {
        let now = Self::sample(world);
        let verdict = match &self.last {
            None => {
                self.baseline = Some(now.clone());
                None
            }
            Some(prev) => {
                let useful = now
                    .iter()
                    .zip(prev)
                    .any(|(n, p)| n.flops > p.flops || n.mpi_calls > p.mpi_calls);
                if useful {
                    self.stalled = 0;
                    self.baseline = Some(now.clone());
                    None
                } else {
                    self.stalled += 1;
                    (self.stalled >= self.stall_windows).then(|| {
                        let base = self.baseline.as_deref().unwrap_or(prev);
                        let victim = (0..world.nranks())
                            .filter(|&r| !world.rank_exited(r))
                            .min_by_key(|&r| {
                                let i = r as usize;
                                now[i].blocks - base[i].blocks.min(now[i].blocks)
                            })
                            .unwrap_or(0);
                        WatchdogTrip {
                            victim,
                            windows: self.stalled,
                            blocks: now.iter().map(|s| s.blocks).sum(),
                        }
                    })
                }
            }
        };
        self.last = Some(now);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{App, AppKind, AppParams};
    use fl_mpi::MpiWorld;

    #[test]
    fn fault_free_run_never_trips() {
        // The false-positive contract: a healthy run of each application
        // must finish without a single trip at the default threshold.
        for kind in [AppKind::Wavetoy, AppKind::Moldyn, AppKind::Climsim] {
            let app = App::build(kind, AppParams::tiny(kind));
            let mut world = MpiWorld::new(&app.image, app.world_config(2_000_000_000));
            let mut dog = Watchdog::new(GuardPolicy::default().stall_windows);
            let window = GuardPolicy::default().window_rounds as u64;
            let mut round = 0u64;
            loop {
                if world.run_round().is_some() {
                    break;
                }
                round += 1;
                if round.is_multiple_of(window) {
                    assert!(
                        dog.observe(&world).is_none(),
                        "{kind:?}: watchdog tripped on a fault-free run at round {round}"
                    );
                }
            }
        }
    }

    use crate::GuardPolicy;

    #[test]
    fn frozen_world_trips_after_threshold() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let world = MpiWorld::new(&app.image, app.world_config(1_000_000));
        let mut dog = Watchdog::new(3);
        dog.prime(&world);
        // Never stepping the world: counters frozen, no useful progress.
        assert!(dog.observe(&world).is_none()); // stall 1
        assert!(dog.observe(&world).is_none()); // stall 2
        let trip = dog.observe(&world).expect("stall 3 must trip");
        assert_eq!(trip.windows, 3);
        dog.reset();
        assert!(dog.observe(&world).is_none(), "reset must re-baseline");
    }

    #[test]
    fn boundary_hang_trips_at_exact_clock() {
        // Regression: a hang already in effect at the first sampling
        // boundary must trip after exactly `stall_windows` windows. The
        // un-primed watchdog burned the first stalled window as its
        // baseline sample and fired one whole window late.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let world = MpiWorld::new(&app.image, app.world_config(1_000_000));
        let window_rounds = 8u64;
        let mut dog = Watchdog::new(3);
        dog.prime(&world); // arm time = round 0
        let mut tripped = None;
        for round in 1..=64u64 {
            // The world is never stepped: wedged from round 0 on.
            if round.is_multiple_of(window_rounds) {
                if let Some(trip) = dog.observe(&world) {
                    tripped = Some((round, trip.windows));
                    break;
                }
            }
        }
        assert_eq!(
            tripped,
            Some((24, 3)),
            "three 8-round windows of stall must trip at round 24 exactly"
        );
    }
}
