//! The progress watchdog: no-progress detection on the retired-block
//! clock (§7's progress metrics, promoted from offline analysis to a
//! live tripwire).
//!
//! Instructions and blocks keep retiring in a spin-loop hang, so raw
//! activity is not progress. The watchdog counts *useful* work — FLOPs
//! and MPI calls, the two §7 metrics every lab application exercises —
//! summed across ranks, and trips after a configured number of
//! consecutive sampling windows in which neither advanced anywhere in
//! the world. Global quiescence (deadlock) is caught by the scheduler
//! itself; the watchdog's value is the spinning rank that would
//! otherwise burn its whole instruction budget.

use fl_mpi::MpiWorld;

/// A watchdog detection: which rank to blame and how long the stall ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// The still-running rank with the *least* block-clock advance over
    /// the stalled interval — in a spin hang every other rank is blocked
    /// on the spinner, so the quietest live rank is the best suspect.
    pub victim: u16,
    /// Consecutive no-progress windows observed.
    pub windows: u32,
    /// Cluster-wide retired blocks at trip time (event-clock locating).
    pub blocks: u64,
}

/// Per-rank counters the watchdog tracks between windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RankSample {
    flops: u64,
    mpi_calls: u64,
    blocks: u64,
}

/// Sliding no-progress detector over whole-world samples.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Trip after this many consecutive windows without useful progress.
    pub stall_windows: u32,
    /// Accrual mode (fl-perturb): instead of the fixed `stall_windows`
    /// deadline, trip at `max(8 * stall_windows, 4 * max_streak)` where
    /// `max_streak` is the longest no-progress streak the world has
    /// ever *recovered* from. A world that is merely slow — a taxed
    /// rank progressing once per starvation cycle — keeps ending its
    /// streaks and keeps the deadline above them; a true wedge never
    /// ends one and is still caught. Default off: the trip arithmetic
    /// is bit-identical to the fixed watchdog.
    pub accrual: bool,
    last: Option<Vec<RankSample>>,
    baseline: Option<Vec<RankSample>>,
    stalled: u32,
    /// Longest stall streak that ended in recovered progress (the
    /// accrual deadline's learned patience).
    max_streak: u32,
}

impl Watchdog {
    /// A watchdog that trips after `stall_windows` consecutive windows
    /// with no FLOP or MPI progress anywhere in the world.
    pub fn new(stall_windows: u32) -> Watchdog {
        Watchdog {
            stall_windows: stall_windows.max(1),
            accrual: false,
            last: None,
            baseline: None,
            stalled: 0,
            max_streak: 0,
        }
    }

    /// Like [`Watchdog::new`], with the accrual deadline enabled.
    pub fn accrual(stall_windows: u32) -> Watchdog {
        Watchdog {
            accrual: true,
            ..Watchdog::new(stall_windows)
        }
    }

    /// Forget all history (called after a rollback: the restored world's
    /// counters jumped backwards and must re-baseline). Learned accrual
    /// patience survives: the restored world's progress rate is the same
    /// world's.
    pub fn reset(&mut self) {
        self.last = None;
        self.baseline = None;
        self.stalled = 0;
    }

    /// Take the arm-time sample so the *first* sampling boundary already
    /// compares against it. Without priming, a hang already in effect at
    /// the first block-clock boundary is burned as the baseline sample
    /// and the trip fires one whole window late.
    pub fn prime(&mut self, world: &MpiWorld) {
        let now = Self::sample(world);
        self.baseline = Some(now.clone());
        self.last = Some(now);
        self.stalled = 0;
    }

    fn sample(world: &MpiWorld) -> Vec<RankSample> {
        (0..world.nranks())
            .map(|r| {
                let c = &world.machine(r).counters;
                RankSample {
                    flops: c.flops,
                    mpi_calls: c.mpi_calls,
                    blocks: c.blocks,
                }
            })
            .collect()
    }

    /// The trip deadline in windows: the fixed threshold, or — in
    /// accrual mode — at least 8x it, extended to 4x the longest stall
    /// streak this world has ever recovered from.
    fn deadline(&self) -> u32 {
        if self.accrual {
            (self.stall_windows.saturating_mul(8)).max(self.max_streak.saturating_mul(4))
        } else {
            self.stall_windows
        }
    }

    /// Feed one sampling window. Returns a trip when the stall deadline
    /// is reached (the caller decides what to do about it; the counter
    /// keeps running, so a caller that ignores trips sees one per window
    /// from then on).
    ///
    /// Boundary contract (the exact-deadline case): the caller samples
    /// *after* the boundary round has fully executed, so a rank retiring
    /// its block — and its FLOPs or MPI call — precisely at the
    /// threshold clock is inside `now`, compares greater than the
    /// previous window, and counts as progress, never as the final
    /// stalled window. Pinned by
    /// `progress_landing_exactly_at_the_trip_clock_resets_the_stall`.
    pub fn observe(&mut self, world: &MpiWorld) -> Option<WatchdogTrip> {
        let now = Self::sample(world);
        let verdict = match &self.last {
            None => {
                self.baseline = Some(now.clone());
                None
            }
            Some(prev) => {
                let useful = now
                    .iter()
                    .zip(prev)
                    .any(|(n, p)| n.flops > p.flops || n.mpi_calls > p.mpi_calls);
                if useful {
                    if self.stalled > self.max_streak {
                        // A streak that ends in progress is the world's
                        // demonstrated worst-case gap: learn it.
                        self.max_streak = self.stalled;
                    }
                    self.stalled = 0;
                    self.baseline = Some(now.clone());
                    None
                } else {
                    self.stalled += 1;
                    (self.stalled >= self.deadline()).then(|| {
                        let base = self.baseline.as_deref().unwrap_or(prev);
                        let victim = (0..world.nranks())
                            .filter(|&r| !world.rank_exited(r))
                            .min_by_key(|&r| {
                                let i = r as usize;
                                now[i].blocks - base[i].blocks.min(now[i].blocks)
                            })
                            .unwrap_or(0);
                        WatchdogTrip {
                            victim,
                            windows: self.stalled,
                            blocks: now.iter().map(|s| s.blocks).sum(),
                        }
                    })
                }
            }
        };
        self.last = Some(now);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{App, AppKind, AppParams};
    use fl_mpi::MpiWorld;

    #[test]
    fn fault_free_run_never_trips() {
        // The false-positive contract: a healthy run of each application
        // must finish without a single trip at the default threshold.
        for kind in [AppKind::Wavetoy, AppKind::Moldyn, AppKind::Climsim] {
            let app = App::build(kind, AppParams::tiny(kind));
            let mut world = MpiWorld::new(&app.image, app.world_config(2_000_000_000));
            let mut dog = Watchdog::new(GuardPolicy::default().stall_windows);
            let window = GuardPolicy::default().window_rounds as u64;
            let mut round = 0u64;
            loop {
                if world.run_round().is_some() {
                    break;
                }
                round += 1;
                if round.is_multiple_of(window) {
                    assert!(
                        dog.observe(&world).is_none(),
                        "{kind:?}: watchdog tripped on a fault-free run at round {round}"
                    );
                }
            }
        }
    }

    use crate::GuardPolicy;

    #[test]
    fn frozen_world_trips_after_threshold() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let world = MpiWorld::new(&app.image, app.world_config(1_000_000));
        let mut dog = Watchdog::new(3);
        dog.prime(&world);
        // Never stepping the world: counters frozen, no useful progress.
        assert!(dog.observe(&world).is_none()); // stall 1
        assert!(dog.observe(&world).is_none()); // stall 2
        let trip = dog.observe(&world).expect("stall 3 must trip");
        assert_eq!(trip.windows, 3);
        dog.reset();
        assert!(dog.observe(&world).is_none(), "reset must re-baseline");
    }

    #[test]
    fn boundary_hang_trips_at_exact_clock() {
        // Regression: a hang already in effect at the first sampling
        // boundary must trip after exactly `stall_windows` windows. The
        // un-primed watchdog burned the first stalled window as its
        // baseline sample and fired one whole window late.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let world = MpiWorld::new(&app.image, app.world_config(1_000_000));
        let window_rounds = 8u64;
        let mut dog = Watchdog::new(3);
        dog.prime(&world); // arm time = round 0
        let mut tripped = None;
        for round in 1..=64u64 {
            // The world is never stepped: wedged from round 0 on.
            if round.is_multiple_of(window_rounds) {
                if let Some(trip) = dog.observe(&world) {
                    tripped = Some((round, trip.windows));
                    break;
                }
            }
        }
        assert_eq!(
            tripped,
            Some((24, 3)),
            "three 8-round windows of stall must trip at round 24 exactly"
        );
    }

    #[test]
    fn progress_landing_exactly_at_the_trip_clock_resets_the_stall() {
        // The exact-deadline boundary: with the stall counter one short
        // of the threshold, useful work retired precisely at the clock
        // of the would-be trip window must count as progress (the
        // caller samples after the boundary round completes, so the
        // work is inside `now`) — not as the final stalled window.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let mut world = MpiWorld::new(&app.image, app.world_config(2_000_000_000));
        let mut dog = Watchdog::new(3);
        dog.prime(&world);
        assert!(dog.observe(&world).is_none()); // stall 1
        assert!(dog.observe(&world).is_none()); // stall 2 = threshold - 1
                                                // The boundary round of the threshold window executes and
                                                // retires useful work; only then is the window sampled.
        assert!(world.run_round().is_none());
        assert!(
            dog.observe(&world).is_none(),
            "progress at the exact trip clock must reset, not trip"
        );
        // With the stall truly continuing, the trip needs a full fresh
        // threshold of windows — not threshold minus the reset one.
        assert!(dog.observe(&world).is_none()); // stall 1
        assert!(dog.observe(&world).is_none()); // stall 2
        assert!(
            dog.observe(&world).is_some(),
            "a full fresh stall run must still trip"
        );
    }

    #[test]
    fn accrual_deadline_outlasts_every_recovered_streak() {
        // Interference cadence: the world stalls for 5 windows, then
        // progresses, repeatedly. The fixed watchdog at 3 windows trips
        // on the first streak; the accrual watchdog learns the cadence
        // and never trips, while a permanent freeze still does.
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let mut world = MpiWorld::new(&app.image, app.world_config(2_000_000_000));
        let mut fixed = Watchdog::new(3);
        let mut accrual = Watchdog::accrual(3);
        fixed.prime(&world);
        accrual.prime(&world);
        let mut fixed_trips = 0u32;
        for _cycle in 0..4 {
            for _stall in 0..5 {
                if fixed.observe(&world).is_some() {
                    fixed_trips += 1;
                }
                assert!(
                    accrual.observe(&world).is_none(),
                    "accrual must outlast a 5-window streak (floor 8x3)"
                );
            }
            assert!(world.run_round().is_none());
        }
        assert!(fixed_trips > 0, "the fixed threshold must have tripped");
        // Now wedge the world for good: the accrual deadline is
        // max(8 * 3, 4 * 5) = 24 windows, and the trip still comes.
        let mut windows = 0u32;
        let trip = loop {
            windows += 1;
            if let Some(t) = accrual.observe(&world) {
                break t;
            }
            assert!(windows < 100, "accrual watchdog never tripped on a wedge");
        };
        assert_eq!(trip.windows, 24, "deadline = max(8*3, 4*max_streak=20)");
    }
}
