//! Guarded execution: run a world under periodic checkpoints, roll back
//! and re-execute on any detected failure, within a bounded restart
//! budget.

use crate::watchdog::Watchdog;
use fl_machine::ProgramImage;
use fl_mpi::{ChannelGuard, MpiWorld, WorldConfig, WorldExit};
use fl_snap::Epoch;

/// Knobs of one guarded execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardPolicy {
    /// Scheduler rounds between COW world checkpoints.
    pub checkpoint_rounds: u32,
    /// Rollback-and-re-execute attempts before giving up (the failure is
    /// then surfaced as detected-but-unrecovered).
    pub max_restarts: u32,
    /// Scheduler rounds per watchdog sampling window.
    pub window_rounds: u32,
    /// Consecutive no-progress windows before the watchdog trips.
    pub stall_windows: u32,
    /// Channel-level redelivery budget per message sequence number.
    pub max_retransmits: u8,
    /// Accrual watchdog deadline (fl-perturb): calibrate the trip
    /// threshold from the longest no-progress streak the world has
    /// recovered from, so interference-slowed runs are not rolled back
    /// as hangs. Default off — bit-identical to the fixed threshold.
    pub accrual: bool,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            checkpoint_rounds: 64,
            max_restarts: 3,
            window_rounds: 8,
            stall_windows: 24,
            max_retransmits: 3,
            accrual: false,
        }
    }
}

impl GuardPolicy {
    /// The [`ChannelGuard`] this policy arms on the world.
    pub fn channel_guard(&self) -> ChannelGuard {
        ChannelGuard {
            enabled: true,
            max_retransmits: self.max_retransmits,
        }
    }
}

/// What one guarded execution observed.
#[derive(Debug, Clone)]
pub struct GuardReport {
    /// Final exit of the last (re-)execution.
    pub exit: WorldExit,
    /// Failures the guard caught (terminal exits + watchdog trips),
    /// including the final one if the budget ran out.
    pub detections: u32,
    /// Rollback-and-re-execute cycles performed.
    pub restarts: u32,
    /// Watchdog trips among the detections.
    pub watchdog_trips: u32,
    /// Channel-level redeliveries the CRC guard performed (counted on
    /// the final world — interventions the checkpoint already contained
    /// are part of its state).
    pub retransmits: u32,
    /// True when the restart budget was exhausted without a clean finish.
    pub exhausted: bool,
    /// Round of the checkpoint the last rollback restored (0 = the
    /// armed initial state).
    pub last_checkpoint_round: u64,
}

impl GuardReport {
    /// Whether the guard did anything at all: a run that is clean *and*
    /// intervention-free is indistinguishable from an unguarded one.
    pub fn intervened(&self) -> bool {
        self.detections > 0 || self.restarts > 0 || self.retransmits > 0
    }
}

/// Run `image` under full guarding: CRC+retransmit channel, progress
/// watchdog, periodic checkpoints, rollback with a bounded restart
/// budget. `arm` is called once on the fresh world to plant the trial's
/// fault (pass `|_| {}` for a fault-free guarded run).
///
/// A not-yet-fired register/memory injection is carried across rollbacks
/// by [`MpiWorld::take_injection`] (snapshots cannot capture the boxed
/// action); an armed message fault rides inside the snapshot itself.
/// A fault that already fired is *not* re-armed — that is the recovery
/// bet: if the last checkpoint predates the corruption, the re-run is
/// clean; if the corruption is inside the checkpoint, the failure
/// re-manifests deterministically until the budget is spent.
///
/// Returns the final world (for output comparison) and the report.
pub fn run_guarded(
    image: &ProgramImage,
    mut cfg: WorldConfig,
    policy: &GuardPolicy,
    arm: impl FnOnce(&mut MpiWorld),
) -> (MpiWorld, GuardReport) {
    cfg.guard = policy.channel_guard();
    let mut world = MpiWorld::new(image, cfg);
    arm(&mut world);

    let mut checkpoint = Epoch {
        snap: world.snapshot(),
        round: 0,
    };
    let mut watchdog = if policy.accrual {
        Watchdog::accrual(policy.stall_windows)
    } else {
        Watchdog::new(policy.stall_windows)
    };
    watchdog.prime(&world);
    let mut report = GuardReport {
        exit: WorldExit::Clean,
        detections: 0,
        restarts: 0,
        watchdog_trips: 0,
        retransmits: 0,
        exhausted: false,
        last_checkpoint_round: 0,
    };
    let checkpoint_rounds = policy.checkpoint_rounds.max(1) as u64;
    let window_rounds = policy.window_rounds.max(1) as u64;

    let exit = loop {
        // A detected failure: terminal world exit, or a watchdog trip
        // promoted to one.
        let failure = match world.run_round() {
            Some(WorldExit::Clean) => break WorldExit::Clean,
            Some(exit) => Some(exit),
            None => {
                let round = world.round();
                if round.is_multiple_of(window_rounds) {
                    watchdog.observe(&world).map(|trip| {
                        report.watchdog_trips += 1;
                        world.note_watchdog_trip(trip.victim, trip.windows);
                        WorldExit::GuardDetected {
                            rank: trip.victim,
                            what: format!(
                                "watchdog: no useful progress for {} windows \
                                 (block clock {})",
                                trip.windows, trip.blocks
                            ),
                        }
                    })
                } else {
                    None
                }
            }
        };
        let Some(failure) = failure else {
            // Healthy round: checkpoint on cadence. The capture marker is
            // recorded first so the event is part of the snapshot.
            let round = world.round();
            if round.is_multiple_of(checkpoint_rounds) {
                world.note_snapshot_captured(round);
                checkpoint = Epoch {
                    snap: world.snapshot(),
                    round,
                };
            }
            continue;
        };

        report.detections += 1;
        if report.restarts >= policy.max_restarts {
            report.exhausted = true;
            break failure;
        }
        // Roll back: restore the checkpoint, carry any unfired injection
        // over from the failed world, re-baseline the watchdog.
        let carried = world.take_injection();
        let mut restored = checkpoint.snap.restore();
        report.restarts += 1;
        report.last_checkpoint_round = checkpoint.round;
        restored.note_guard_restart(report.restarts, checkpoint.round);
        if let Some(inj) = carried {
            restored.set_injection(inj);
        }
        world = restored;
        watchdog.reset();
        watchdog.prime(&world);
    };

    report.exit = exit;
    report.retransmits = world.retransmits();
    (world, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{App, AppKind, AppParams};
    use fl_machine::KERNEL_BASE;
    use fl_mpi::MessageFault;

    fn tiny(kind: AppKind) -> App {
        App::build(kind, AppParams::tiny(kind))
    }

    fn outputs(w: &MpiWorld) -> (Vec<u8>, Vec<u8>) {
        let m = w.machine(0);
        (m.outfile.clone(), m.console.clone())
    }

    #[test]
    fn fault_free_guarded_runs_are_clean_and_intervention_free() {
        for kind in [AppKind::Wavetoy, AppKind::Moldyn, AppKind::Climsim] {
            let app = tiny(kind);
            let cfg = app.world_config(2_000_000_000);
            let mut golden = MpiWorld::new(&app.image, cfg);
            assert_eq!(golden.run(), WorldExit::Clean);

            let (world, report) = run_guarded(&app.image, cfg, &GuardPolicy::default(), |_| {});
            assert_eq!(report.exit, WorldExit::Clean, "{kind:?}");
            assert!(!report.intervened(), "{kind:?}: {report:?}");
            assert_eq!(outputs(&world), outputs(&golden), "{kind:?}");
        }
    }

    #[test]
    fn payload_flip_is_retransmitted_and_run_stays_correct() {
        let app = tiny(AppKind::Wavetoy);
        let cfg = app.world_config(2_000_000_000);
        let mut golden = MpiWorld::new(&app.image, cfg);
        assert_eq!(golden.run(), WorldExit::Clean);

        // Unguarded, this flip lands somewhere in a live message; with
        // the guard on, the CRC catches it and the sender redelivers.
        let fault = MessageFault {
            rank: 1,
            at_recv_byte: 100,
            bit: 3,
        };
        let (world, report) = run_guarded(&app.image, cfg, &GuardPolicy::default(), |w| {
            w.set_message_fault(fault)
        });
        assert_eq!(report.exit, WorldExit::Clean);
        assert!(report.retransmits > 0, "CRC must have caught the flip");
        assert_eq!(report.restarts, 0, "retransmit suffices, no rollback");
        assert!(report.intervened());
        assert_eq!(outputs(&world), outputs(&golden));
    }

    #[test]
    fn zero_retransmit_budget_turns_flip_into_guard_detection() {
        let app = tiny(AppKind::Wavetoy);
        let cfg = app.world_config(2_000_000_000);
        let policy = GuardPolicy {
            max_retransmits: 0,
            max_restarts: 0,
            ..GuardPolicy::default()
        };
        let (_, report) = run_guarded(&app.image, cfg, &policy, |w| {
            w.set_message_fault(MessageFault {
                rank: 1,
                at_recv_byte: 100,
                bit: 3,
            })
        });
        assert!(
            matches!(report.exit, WorldExit::GuardDetected { .. }),
            "exhausted budget must surface as GuardDetected, got {:?}",
            report.exit
        );
        assert!(report.exhausted);
    }

    #[test]
    fn crash_after_checkpoint_rolls_back_and_recovers() {
        // The fl-snap recovery experiment, now inside the guarded
        // runner: throw a rank's EIP into kernel space mid-run. The
        // injection fires after the first checkpoint, so rollback erases
        // it and the re-run completes bit-identically to golden.
        let app = tiny(AppKind::Wavetoy);
        let cfg = app.world_config(2_000_000_000);
        let mut golden = MpiWorld::new(&app.image, cfg);
        assert_eq!(golden.run(), WorldExit::Clean);
        let kill_at = golden.machine(1).counters.insns / 2;

        let policy = GuardPolicy {
            checkpoint_rounds: 16,
            ..GuardPolicy::default()
        };
        let (world, report) = run_guarded(&app.image, cfg, &policy, |w| {
            w.set_injection(fl_mpi::PendingInjection::once(1, kill_at, |m| {
                m.cpu.eip = KERNEL_BASE + 4;
            }))
        });
        assert_eq!(report.exit, WorldExit::Clean, "{report:?}");
        assert_eq!(report.restarts, 1);
        assert_eq!(report.detections, 1);
        assert!(
            report.last_checkpoint_round > 0,
            "must restore a mid-run checkpoint"
        );
        assert_eq!(outputs(&world), outputs(&golden));
    }

    #[test]
    fn restart_budget_bounds_deterministic_refailure() {
        // An injection carried across rollbacks re-fires every re-run
        // (take_injection + re-arm), so the same crash recurs until the
        // budget is spent and the final exit surfaces.
        let app = tiny(AppKind::Wavetoy);
        let cfg = app.world_config(2_000_000_000);
        let policy = GuardPolicy {
            checkpoint_rounds: 1_000_000, // never checkpoints mid-run
            max_restarts: 2,
            ..GuardPolicy::default()
        };
        // Persistent injection: re-asserts forever, so even though the
        // rollback target is the armed initial state, every re-run fails.
        let (_, report) = run_guarded(&app.image, cfg, &policy, |w| {
            w.set_injection(fl_mpi::PendingInjection::persistent(0, 500, 200, |m| {
                m.cpu.eip = KERNEL_BASE + 4;
            }))
        });
        assert!(
            matches!(report.exit, WorldExit::Crashed { .. }),
            "{report:?}"
        );
        assert_eq!(report.restarts, 2);
        assert_eq!(report.detections, 3);
        assert!(report.exhausted);
    }

    #[test]
    fn guard_events_carry_the_recovery_timeline() {
        // With event recording on, a recovered run's streams contain the
        // capture and restart markers with block-clock timestamps.
        let app = tiny(AppKind::Wavetoy);
        let mut cfg = app.world_config(2_000_000_000);
        cfg.machine.obs_capacity = 4096;
        let mut golden = MpiWorld::new(&app.image, cfg);
        assert_eq!(golden.run(), WorldExit::Clean);
        let kill_at = golden.machine(0).counters.insns / 2;

        let policy = GuardPolicy {
            checkpoint_rounds: 16,
            ..GuardPolicy::default()
        };
        let (world, report) = run_guarded(&app.image, cfg, &policy, |w| {
            w.set_injection(fl_mpi::PendingInjection::once(0, kill_at, |m| {
                m.cpu.eip = KERNEL_BASE + 4;
            }))
        });
        assert_eq!(report.exit, WorldExit::Clean);
        let streams = world.event_streams();
        let kinds: Vec<&'static str> = streams
            .iter()
            .flat_map(|s| s.iter().map(|e| e.kind.name()))
            .collect();
        assert!(kinds.contains(&"snapshot_captured"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"guard_restart"));
    }
}
