//! # fl-obs — structured event tracing for FaultLab
//!
//! The paper diagnoses *why* an injection manifested (crash vs hang vs
//! detected) by post-hoc inspection of the run's end state. FINJ-style
//! harnesses show that a fault-injection campaign becomes far more
//! useful when every trial also emits a machine-readable event stream:
//! what the victim was doing when the fault landed, how long the
//! corruption stayed latent, and which subsystem finally noticed.
//!
//! This crate is the dependency-free substrate of that telemetry:
//!
//! * [`Event`] / [`EventKind`] — typed, allocation-free event records
//!   (signal raised, syscall trapped, malloc/free, message
//!   send/deliver/receive, MPI error path, injection landed, snapshot
//!   captured/restored);
//! * [`EventLog`] — a bounded per-rank ring buffer with a monotonic
//!   sequence number and an event clock keyed to retired basic-block
//!   counts (the same time axis as the paper's working-set plots);
//! * JSONL serialization ([`EventLog::jsonl_line`]) and deterministic
//!   cross-rank merging ([`merge_ranks`]).
//!
//! `fl-machine` and `fl-mpi` own the emission points; `fl-inject`
//! aggregates streams into per-trial timelines and campaign metrics.
//!
//! **Determinism contract.** Recording must never influence execution,
//! and a trial forked from a snapshot must replay the *identical*
//! stream a cold run produces. Event payloads are therefore plain
//! numbers (no wall-clock time, no host addresses), the clock is the
//! emitting rank's retired-block count, and the ring buffer is part of
//! machine snapshots. Snapshot capture/restore events are emitted only
//! through explicit out-of-band hooks (the recovery experiment), never
//! on the campaign fork fast path — otherwise forked and cold streams
//! could not be bit-identical.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Signal classes a machine can raise (mirrors `fl-machine`'s signals
/// without depending on it — fl-obs sits below the machine crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigKind {
    /// Invalid memory reference.
    Segv,
    /// Illegal instruction.
    Ill,
    /// Arithmetic fault.
    Fpe,
}

impl SigKind {
    /// Stable lowercase name (JSONL `signal` field).
    pub fn name(self) -> &'static str {
        match self {
            SigKind::Segv => "segv",
            SigKind::Ill => "ill",
            SigKind::Fpe => "fpe",
        }
    }
}

/// What happened. Every variant carries only `Copy` payloads so that
/// recording never allocates on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A fatal signal was raised on the rank.
    SignalRaised { signal: SigKind, addr: u32 },
    /// The rank trapped into the kernel/MPI layer (`num` is the raw
    /// syscall number, including MPI calls).
    SyscallTrap { num: u16 },
    /// `malloc` served (`ptr == 0` means the allocation failed).
    MallocCall { size: u32, ptr: u32 },
    /// `free` called.
    FreeCall { ptr: u32 },
    /// A wire message left this rank.
    MsgSend { to: u16, tag: u32, bytes: u32 },
    /// A wire message arrived at this rank's channel (pre-matching).
    MsgDeliver { from: u16, tag: u32, bytes: u32 },
    /// A blocked receive matched and consumed a data message.
    MsgRecvMatch { from: u16, tag: u32, bytes: u32 },
    /// The MPI error path ran on this rank; `handled` is true when the
    /// user-registered error handler fired (→ MPI-Detected), false when
    /// the job aborted instead.
    MpiError { handled: bool },
    /// An armed register/memory injection fired on this rank.
    FaultFired { at_insns: u64 },
    /// An armed channel-level message fault struck an incoming message.
    MessageFaultHit { offset: u32, in_header: bool },
    /// A world checkpoint was captured (out-of-band; recovery paths).
    SnapshotCaptured { round: u64 },
    /// The world was restored from a checkpoint (out-of-band).
    SnapshotRestored { round: u64 },
    /// An incoming message failed CRC verification at the ADI.
    CrcReject { from: u16, seq: u32 },
    /// The sender redelivered a message after a CRC reject (`attempt`
    /// counts retries of this sequence number, starting at 1).
    Retransmit { to: u16, seq: u32, attempt: u8 },
    /// The progress watchdog declared the rank stalled (`window` is the
    /// number of consecutive no-progress windows observed).
    WatchdogTrip { window: u32 },
    /// The guard rolled the world back and re-executed (out-of-band;
    /// `restart` is 1-based, `round` is the scheduler round restored to).
    GuardRestart { restart: u32, round: u64 },
    /// A rank-kill fault fired on this rank (`wedge` is true when the
    /// rank stays resident but silent instead of dying outright).
    RankKilled { wedge: bool },
    /// The failure detector sent an explicit liveness probe to a rank it
    /// had not heard from for `quiet` rounds.
    HeartbeatProbe { to: u16, quiet: u64 },
    /// The failure detector declared a rank suspect after `unheard`
    /// rounds of silence (raised just before `RankFailed`).
    RankSuspected { rank: u16, unheard: u64 },
    /// The world was rebuilt over the survivors of a failed rank
    /// (out-of-band; ULFM-style shrink).
    WorldShrunk { failed: u16, survivors: u16 },
    /// A spare rank was booted from the failed rank's buddy checkpoint
    /// (out-of-band; `round` is the checkpoint's scheduler round).
    RankRespawned { rank: u16, round: u64 },
    /// Replica voting excluded a divergent replica of this logical rank
    /// (out-of-band; recorded on the surviving majority's stream).
    ReplicaVote { excluded: u16, live: u16 },
}

impl EventKind {
    /// All kind names, in a stable order (TSV histogram columns).
    pub const NAMES: [&'static str; 22] = [
        "signal",
        "syscall",
        "malloc",
        "free",
        "msg_send",
        "msg_deliver",
        "msg_recv",
        "mpi_error",
        "fault_fired",
        "msg_fault_hit",
        "snapshot_captured",
        "snapshot_restored",
        "crc_reject",
        "retransmit",
        "watchdog_trip",
        "guard_restart",
        "rank_killed",
        "heartbeat_probe",
        "rank_suspected",
        "world_shrunk",
        "rank_respawned",
        "replica_vote",
    ];

    /// Stable snake_case name (JSONL `kind` field, histogram key).
    pub fn name(self) -> &'static str {
        Self::NAMES[self.index()]
    }

    /// Position in [`EventKind::NAMES`] (dense histogram index).
    pub fn index(self) -> usize {
        match self {
            EventKind::SignalRaised { .. } => 0,
            EventKind::SyscallTrap { .. } => 1,
            EventKind::MallocCall { .. } => 2,
            EventKind::FreeCall { .. } => 3,
            EventKind::MsgSend { .. } => 4,
            EventKind::MsgDeliver { .. } => 5,
            EventKind::MsgRecvMatch { .. } => 6,
            EventKind::MpiError { .. } => 7,
            EventKind::FaultFired { .. } => 8,
            EventKind::MessageFaultHit { .. } => 9,
            EventKind::SnapshotCaptured { .. } => 10,
            EventKind::SnapshotRestored { .. } => 11,
            EventKind::CrcReject { .. } => 12,
            EventKind::Retransmit { .. } => 13,
            EventKind::WatchdogTrip { .. } => 14,
            EventKind::GuardRestart { .. } => 15,
            EventKind::RankKilled { .. } => 16,
            EventKind::HeartbeatProbe { .. } => 17,
            EventKind::RankSuspected { .. } => 18,
            EventKind::WorldShrunk { .. } => 19,
            EventKind::RankRespawned { .. } => 20,
            EventKind::ReplicaVote { .. } => 21,
        }
    }

    /// Human-readable one-line description (CLI timeline rendering).
    pub fn describe(self) -> String {
        match self {
            EventKind::SignalRaised { signal, addr } => {
                format!("signal {} at {addr:#010x}", signal.name())
            }
            EventKind::SyscallTrap { num } => format!("syscall {num}"),
            EventKind::MallocCall { size, ptr } => format!("malloc({size}) -> {ptr:#x}"),
            EventKind::FreeCall { ptr } => format!("free({ptr:#x})"),
            EventKind::MsgSend { to, tag, bytes } => {
                format!("send to rank {to}, tag {tag}, {bytes} B")
            }
            EventKind::MsgDeliver { from, tag, bytes } => {
                format!("deliver from rank {from}, tag {tag}, {bytes} B")
            }
            EventKind::MsgRecvMatch { from, tag, bytes } => {
                format!("recv matched from rank {from}, tag {tag}, {bytes} B")
            }
            EventKind::MpiError { handled } => {
                if handled {
                    "MPI error (handler fired)".into()
                } else {
                    "MPI error (job aborted)".into()
                }
            }
            EventKind::FaultFired { at_insns } => format!("fault fired at insn {at_insns}"),
            EventKind::MessageFaultHit { offset, in_header } => format!(
                "message fault hit offset {offset} ({})",
                if in_header { "header" } else { "payload" }
            ),
            EventKind::SnapshotCaptured { round } => format!("snapshot captured (round {round})"),
            EventKind::SnapshotRestored { round } => format!("snapshot restored (round {round})"),
            EventKind::CrcReject { from, seq } => {
                format!("CRC reject: message from rank {from}, seq {seq}")
            }
            EventKind::Retransmit { to, seq, attempt } => {
                format!("retransmit to rank {to}, seq {seq} (attempt {attempt})")
            }
            EventKind::WatchdogTrip { window } => {
                format!("watchdog trip after {window} stalled windows")
            }
            EventKind::GuardRestart { restart, round } => {
                format!("guard restart {restart} (rolled back to round {round})")
            }
            EventKind::RankKilled { wedge } => {
                if wedge {
                    "rank wedged (alive but silent)".into()
                } else {
                    "rank killed".into()
                }
            }
            EventKind::HeartbeatProbe { to, quiet } => {
                format!("heartbeat probe to rank {to} after {quiet} quiet rounds")
            }
            EventKind::RankSuspected { rank, unheard } => {
                format!("rank {rank} suspected dead after {unheard} unheard rounds")
            }
            EventKind::WorldShrunk { failed, survivors } => {
                format!("world shrunk around failed rank {failed} ({survivors} survivors)")
            }
            EventKind::RankRespawned { rank, round } => {
                format!("rank {rank} respawned from buddy checkpoint (round {round})")
            }
            EventKind::ReplicaVote { excluded, live } => {
                format!("replica {excluded} outvoted ({live} replicas remain)")
            }
        }
    }

    /// Append the kind-specific JSON fields (no leading comma handling;
    /// every field is written as `,"k":v`).
    fn write_json_fields(self, out: &mut String) {
        match self {
            EventKind::SignalRaised { signal, addr } => {
                let _ = write!(out, ",\"signal\":\"{}\",\"addr\":{addr}", signal.name());
            }
            EventKind::SyscallTrap { num } => {
                let _ = write!(out, ",\"num\":{num}");
            }
            EventKind::MallocCall { size, ptr } => {
                let _ = write!(out, ",\"size\":{size},\"ptr\":{ptr}");
            }
            EventKind::FreeCall { ptr } => {
                let _ = write!(out, ",\"ptr\":{ptr}");
            }
            EventKind::MsgSend { to, tag, bytes } => {
                let _ = write!(out, ",\"to\":{to},\"tag\":{tag},\"bytes\":{bytes}");
            }
            EventKind::MsgDeliver { from, tag, bytes }
            | EventKind::MsgRecvMatch { from, tag, bytes } => {
                let _ = write!(out, ",\"from\":{from},\"tag\":{tag},\"bytes\":{bytes}");
            }
            EventKind::MpiError { handled } => {
                let _ = write!(out, ",\"handled\":{handled}");
            }
            EventKind::FaultFired { at_insns } => {
                let _ = write!(out, ",\"at_insns\":{at_insns}");
            }
            EventKind::MessageFaultHit { offset, in_header } => {
                let _ = write!(out, ",\"offset\":{offset},\"in_header\":{in_header}");
            }
            EventKind::SnapshotCaptured { round } | EventKind::SnapshotRestored { round } => {
                let _ = write!(out, ",\"round\":{round}");
            }
            EventKind::CrcReject { from, seq } => {
                let _ = write!(out, ",\"from\":{from},\"seq\":{seq}");
            }
            EventKind::Retransmit { to, seq, attempt } => {
                let _ = write!(out, ",\"to\":{to},\"seq\":{seq},\"attempt\":{attempt}");
            }
            EventKind::WatchdogTrip { window } => {
                let _ = write!(out, ",\"window\":{window}");
            }
            EventKind::GuardRestart { restart, round } => {
                let _ = write!(out, ",\"restart\":{restart},\"round\":{round}");
            }
            EventKind::RankKilled { wedge } => {
                let _ = write!(out, ",\"wedge\":{wedge}");
            }
            EventKind::HeartbeatProbe { to, quiet } => {
                let _ = write!(out, ",\"to\":{to},\"quiet\":{quiet}");
            }
            EventKind::RankSuspected { rank, unheard } => {
                let _ = write!(out, ",\"rank\":{rank},\"unheard\":{unheard}");
            }
            EventKind::WorldShrunk { failed, survivors } => {
                let _ = write!(out, ",\"failed\":{failed},\"survivors\":{survivors}");
            }
            EventKind::RankRespawned { rank, round } => {
                let _ = write!(out, ",\"rank\":{rank},\"round\":{round}");
            }
            EventKind::ReplicaVote { excluded, live } => {
                let _ = write!(out, ",\"excluded\":{excluded},\"live\":{live}");
            }
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Per-rank monotonic sequence number (0-based count of events
    /// recorded on the rank, including any that were later evicted).
    pub seq: u64,
    /// Event clock: the emitting rank's retired basic-block count at
    /// emission — deterministic, snapshot-stable, and the same time
    /// axis as the working-set analysis.
    pub clock: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded per-rank event ring buffer.
///
/// When disabled (capacity 0) recording is a single branch — campaigns
/// that do not observe pay essentially nothing. When full, the oldest
/// event is evicted and counted in [`EventLog::dropped`], so memory
/// stays bounded no matter how long the run.
///
/// Equality is structural (retained events, sequence and drop
/// counters), which is exactly the invariant the fork-vs-cold property
/// tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    events: VecDeque<Event>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl EventLog {
    /// A disabled log: records nothing, costs one branch per call.
    pub fn disabled() -> EventLog {
        EventLog {
            events: VecDeque::new(),
            capacity: 0,
            seq: 0,
            dropped: 0,
        }
    }

    /// A log retaining at most `capacity` events.
    pub fn bounded(capacity: usize) -> EventLog {
        EventLog {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record one event at `clock` (a retired-block count).
    #[inline]
    pub fn record(&mut self, clock: u64, kind: EventKind) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.seq,
            clock,
            kind,
        });
        self.seq += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events recorded on this log (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copy the retained events out (timeline assembly).
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Serialize one retained event as a JSONL line (no trailing
    /// newline). `rank` labels the stream the event came from.
    pub fn jsonl_line(rank: u16, e: &Event) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"rank\":{rank},\"seq\":{},\"clock\":{},\"kind\":\"{}\"",
            e.seq,
            e.clock,
            e.kind.name()
        );
        e.kind.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// Merge per-rank event streams into one deterministic global timeline,
/// ordered by (clock, rank, seq). The clock is rank-local block time,
/// so the merge is a consistent interleaving rather than a true global
/// order — but it is *the same* interleaving on every run, which is
/// what replay and diffing need.
pub fn merge_ranks(per_rank: &[Vec<Event>]) -> Vec<(u16, Event)> {
    let mut all: Vec<(u16, Event)> = per_rank
        .iter()
        .enumerate()
        .flat_map(|(r, evs)| evs.iter().map(move |&e| (r as u16, e)))
        .collect();
    all.sort_by_key(|&(r, e)| (e.clock, r, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(1, EventKind::SyscallTrap { num: 3 });
        assert!(!log.is_enabled());
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::bounded(2);
        for i in 0..5u16 {
            log.record(i as u64, EventKind::SyscallTrap { num: i });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.total_recorded(), 5);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_lines_are_valid_shape() {
        let mut log = EventLog::bounded(8);
        log.record(
            10,
            EventKind::MsgSend {
                to: 2,
                tag: 7,
                bytes: 48,
            },
        );
        log.record(
            11,
            EventKind::SignalRaised {
                signal: SigKind::Segv,
                addr: 0x1234,
            },
        );
        let lines: Vec<String> = log.events().map(|e| EventLog::jsonl_line(0, e)).collect();
        assert_eq!(
            lines[0],
            "{\"rank\":0,\"seq\":0,\"clock\":10,\"kind\":\"msg_send\",\"to\":2,\"tag\":7,\"bytes\":48}"
        );
        assert!(lines[1].contains("\"signal\":\"segv\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), 1);
        }
    }

    #[test]
    fn merge_orders_by_clock_then_rank_then_seq() {
        let mut a = EventLog::bounded(8);
        let mut b = EventLog::bounded(8);
        a.record(5, EventKind::SyscallTrap { num: 1 });
        a.record(9, EventKind::SyscallTrap { num: 2 });
        b.record(5, EventKind::SyscallTrap { num: 3 });
        b.record(7, EventKind::SyscallTrap { num: 4 });
        let merged = merge_ranks(&[a.to_vec(), b.to_vec()]);
        let shape: Vec<(u16, u64)> = merged.iter().map(|&(r, e)| (r, e.clock)).collect();
        assert_eq!(shape, vec![(0, 5), (1, 5), (1, 7), (0, 9)]);
    }

    #[test]
    fn kind_names_are_dense_and_stable() {
        let kinds = [
            EventKind::SignalRaised {
                signal: SigKind::Ill,
                addr: 0,
            },
            EventKind::SyscallTrap { num: 0 },
            EventKind::MallocCall { size: 0, ptr: 0 },
            EventKind::FreeCall { ptr: 0 },
            EventKind::MsgSend {
                to: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::MsgDeliver {
                from: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::MsgRecvMatch {
                from: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::MpiError { handled: true },
            EventKind::FaultFired { at_insns: 0 },
            EventKind::MessageFaultHit {
                offset: 0,
                in_header: false,
            },
            EventKind::SnapshotCaptured { round: 0 },
            EventKind::SnapshotRestored { round: 0 },
            EventKind::CrcReject { from: 0, seq: 0 },
            EventKind::Retransmit {
                to: 0,
                seq: 0,
                attempt: 0,
            },
            EventKind::WatchdogTrip { window: 0 },
            EventKind::GuardRestart {
                restart: 0,
                round: 0,
            },
            EventKind::RankKilled { wedge: false },
            EventKind::HeartbeatProbe { to: 0, quiet: 0 },
            EventKind::RankSuspected {
                rank: 0,
                unheard: 0,
            },
            EventKind::WorldShrunk {
                failed: 0,
                survivors: 0,
            },
            EventKind::RankRespawned { rank: 0, round: 0 },
            EventKind::ReplicaVote {
                excluded: 0,
                live: 0,
            },
        ];
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(k.name(), EventKind::NAMES[i]);
        }
    }

    #[test]
    fn logs_compare_structurally() {
        let mut a = EventLog::bounded(4);
        let mut b = EventLog::bounded(4);
        for log in [&mut a, &mut b] {
            log.record(1, EventKind::FreeCall { ptr: 8 });
        }
        assert_eq!(a, b);
        b.record(2, EventKind::FreeCall { ptr: 8 });
        assert_ne!(a, b);
    }
}
