//! Binary encoding and decoding of instructions.
//!
//! Word layout (little-endian in memory):
//!
//! ```text
//!  31              20 19   16 15   12 11    8 7       0
//! +------------------+-------+-------+-------+---------+
//! |      aux12       |  rc   |  rb   |  ra   | opcode  |
//! +------------------+-------+-------+-------+---------+
//! ```
//!
//! `ra`/`rb`/`rc` are 4-bit register fields (GPRs use the low 3 bits; the
//! 4th bit is ignored on decode so register-field bit flips always select a
//! live register, as on IA-32). `aux12` holds the 12-bit signed memory
//! displacement or the syscall number. Instructions whose opcode reports
//! [`Opcode::has_imm_word`] are followed by one 32-bit immediate word.

use crate::insn::{AluOp, Cond, FpuBinOp, FpuUnOp, Insn};
use crate::opcode::Opcode;
use crate::reg::Gpr;

/// An encoded instruction: one or two 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedInsn {
    words: [u32; 2],
    len: u8,
}

impl EncodedInsn {
    /// The encoded words (1 or 2).
    pub fn to_words(self) -> Vec<u32> {
        self.words[..self.len as usize].to_vec()
    }

    /// Little-endian byte representation.
    pub fn to_bytes(self) -> Vec<u8> {
        self.words[..self.len as usize]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }

    /// Number of 32-bit words.
    pub fn len_words(self) -> usize {
        self.len as usize
    }
}

/// Errors produced while decoding a (possibly corrupted) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is one of the ~75 % undefined values.
    IllegalOpcode(u8),
    /// A field carries an out-of-range value (e.g. an undefined condition).
    IllegalField,
    /// The instruction needs an immediate word that lies past the end of
    /// the provided slice (or the mapped text segment).
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::IllegalOpcode(b) => write!(f, "illegal opcode byte {b:#04x}"),
            DecodeError::IllegalField => f.write_str("illegal instruction field"),
            DecodeError::Truncated => f.write_str("truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn word(op: Opcode, ra: u8, rb: u8, rc: u8, aux: u16) -> u32 {
    debug_assert!(aux < 1 << 12);
    (op as u32)
        | ((ra as u32 & 0xf) << 8)
        | ((rb as u32 & 0xf) << 12)
        | ((rc as u32 & 0xf) << 16)
        | ((aux as u32) << 20)
}

fn aux_from_off(off: i32) -> u16 {
    debug_assert!(
        (-2048..2048).contains(&off),
        "offset {off} out of 12-bit range"
    );
    (off as u32 & 0xfff) as u16
}

fn off_from_aux(aux: u16) -> i32 {
    // Sign-extend 12 bits.
    ((aux as i32) << 20) >> 20
}

/// Encode one instruction.
///
/// # Panics
///
/// In debug builds, panics if a displacement exceeds the signed 12-bit
/// range; the compiler is responsible for materialising larger offsets via
/// `AddI`.
pub fn encode(insn: &Insn) -> EncodedInsn {
    use Insn::*;
    let op = insn.opcode();
    let (w0, imm) = match *insn {
        Nop | Ret | Leave | Halt | Fldz | Fld1 | Fcomip | Fpop => (word(op, 0, 0, 0, 0), None),
        MovI { rd, imm } => (word(op, rd.index(), 0, 0, 0), Some(imm)),
        Mov { rd, rs } => (word(op, rd.index(), rs.index(), 0, 0), None),
        Alu { rd, ra, rb, .. } => (word(op, rd.index(), ra.index(), rb.index(), 0), None),
        AddI { rd, ra, imm } | MulI { rd, ra, imm } => {
            (word(op, rd.index(), ra.index(), 0, 0), Some(imm))
        }
        Cmp { ra, rb } => (word(op, ra.index(), rb.index(), 0, 0), None),
        CmpI { ra, imm } => (word(op, ra.index(), 0, 0, 0), Some(imm)),
        J { cond, target } => (word(op, cond as u8, 0, 0, 0), Some(target)),
        JmpR { rs } | CallR { rs } | Push { rs } | FildR { rs } => {
            (word(op, rs.index(), 0, 0, 0), None)
        }
        Ld { rd, base, off } | LdB { rd, base, off } => (
            word(op, rd.index(), base.index(), 0, aux_from_off(off)),
            None,
        ),
        St { rb, base, off } | StB { rb, base, off } => (
            word(op, rb.index(), base.index(), 0, aux_from_off(off)),
            None,
        ),
        LdG { rd, addr } => (word(op, rd.index(), 0, 0, 0), Some(addr)),
        StG { rs, addr } => (word(op, rs.index(), 0, 0, 0), Some(addr)),
        Pop { rd } | FistpR { rd } => (word(op, rd.index(), 0, 0, 0), None),
        Call { target } => (word(op, 0, 0, 0, 0), Some(target)),
        Enter { frame } => (word(op, 0, 0, 0, 0), Some(frame)),
        Sys { num } => (word(op, 0, 0, 0, num & 0xfff), None),
        Fld { base, off }
        | Fst { base, off }
        | Fstp { base, off }
        | Fild { base, off }
        | Fistp { base, off } => (word(op, 0, base.index(), 0, aux_from_off(off)), None),
        FldG { addr } | FstpG { addr } => (word(op, 0, 0, 0, 0), Some(addr)),
        Fbinp { .. } | Funop { .. } => (word(op, 0, 0, 0, 0), None),
        Fxch { i } | FldSt { i } => (word(op, i & 7, 0, 0, 0), None),
    };
    match imm {
        Some(v) => EncodedInsn {
            words: [w0, v],
            len: 2,
        },
        None => EncodedInsn {
            words: [w0, 0],
            len: 1,
        },
    }
}

/// Decode the instruction starting at `words[0]`.
///
/// Returns the instruction and the number of words consumed. This is the
/// same decoder the machine uses at execution time, so corrupted encodings
/// fail here exactly as they would in hardware.
pub fn decode(words: &[u32]) -> Result<(Insn, usize), DecodeError> {
    decode_at(words, 0)
}

/// Decode the instruction starting at `words[idx]`.
pub fn decode_at(words: &[u32], idx: usize) -> Result<(Insn, usize), DecodeError> {
    let w0 = *words.get(idx).ok_or(DecodeError::Truncated)?;
    let opb = (w0 & 0xff) as u8;
    let op = Opcode::from_byte(opb).ok_or(DecodeError::IllegalOpcode(opb))?;
    let ra = ((w0 >> 8) & 0xf) as u8;
    let rb = ((w0 >> 12) & 0xf) as u8;
    let rc = ((w0 >> 16) & 0xf) as u8;
    let aux = ((w0 >> 20) & 0xfff) as u16;
    let imm = if op.has_imm_word() {
        Some(*words.get(idx + 1).ok_or(DecodeError::Truncated)?)
    } else {
        None
    };
    let g = Gpr::from_index;
    use Insn::*;
    let insn = match op {
        Opcode::Nop => Nop,
        Opcode::MovI => MovI {
            rd: g(ra),
            imm: imm.unwrap(),
        },
        Opcode::Mov => Mov {
            rd: g(ra),
            rs: g(rb),
        },
        Opcode::Add => Alu {
            op: AluOp::Add,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Sub => Alu {
            op: AluOp::Sub,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Mul => Alu {
            op: AluOp::Mul,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Div => Alu {
            op: AluOp::Div,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Mod => Alu {
            op: AluOp::Mod,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::And => Alu {
            op: AluOp::And,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Or => Alu {
            op: AluOp::Or,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Xor => Alu {
            op: AluOp::Xor,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Shl => Alu {
            op: AluOp::Shl,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Shr => Alu {
            op: AluOp::Shr,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::Sar => Alu {
            op: AluOp::Sar,
            rd: g(ra),
            ra: g(rb),
            rb: g(rc),
        },
        Opcode::AddI => AddI {
            rd: g(ra),
            ra: g(rb),
            imm: imm.unwrap(),
        },
        Opcode::MulI => MulI {
            rd: g(ra),
            ra: g(rb),
            imm: imm.unwrap(),
        },
        Opcode::Cmp => Cmp {
            ra: g(ra),
            rb: g(rb),
        },
        Opcode::CmpI => CmpI {
            ra: g(ra),
            imm: imm.unwrap(),
        },
        Opcode::J => J {
            cond: Cond::from_index(ra).ok_or(DecodeError::IllegalField)?,
            target: imm.unwrap(),
        },
        Opcode::JmpR => JmpR { rs: g(ra) },
        Opcode::Ld => Ld {
            rd: g(ra),
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::St => St {
            rb: g(ra),
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::LdG => LdG {
            rd: g(ra),
            addr: imm.unwrap(),
        },
        Opcode::StG => StG {
            rs: g(ra),
            addr: imm.unwrap(),
        },
        Opcode::LdB => LdB {
            rd: g(ra),
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::StB => StB {
            rb: g(ra),
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::Push => Push { rs: g(ra) },
        Opcode::Pop => Pop { rd: g(ra) },
        Opcode::Call => Call {
            target: imm.unwrap(),
        },
        Opcode::CallR => CallR { rs: g(ra) },
        Opcode::Ret => Ret,
        Opcode::Enter => Enter {
            frame: imm.unwrap(),
        },
        Opcode::Leave => Leave,
        Opcode::Sys => Sys { num: aux },
        Opcode::Halt => Halt,
        Opcode::Fld => Fld {
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::FldG => FldG { addr: imm.unwrap() },
        Opcode::Fst => Fst {
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::Fstp => Fstp {
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::FstpG => FstpG { addr: imm.unwrap() },
        Opcode::Fild => Fild {
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::Fistp => Fistp {
            base: g(rb),
            off: off_from_aux(aux),
        },
        Opcode::FildR => FildR { rs: g(ra) },
        Opcode::FistpR => FistpR { rd: g(ra) },
        Opcode::Fldz => Fldz,
        Opcode::Fld1 => Fld1,
        Opcode::Faddp => Fbinp { op: FpuBinOp::Add },
        Opcode::Fsubp => Fbinp { op: FpuBinOp::Sub },
        Opcode::Fsubrp => Fbinp { op: FpuBinOp::SubR },
        Opcode::Fmulp => Fbinp { op: FpuBinOp::Mul },
        Opcode::Fdivp => Fbinp { op: FpuBinOp::Div },
        Opcode::Fdivrp => Fbinp { op: FpuBinOp::DivR },
        Opcode::Fchs => Funop { op: FpuUnOp::Chs },
        Opcode::Fabs => Funop { op: FpuUnOp::Abs },
        Opcode::Fsqrt => Funop { op: FpuUnOp::Sqrt },
        Opcode::Fsin => Funop { op: FpuUnOp::Sin },
        Opcode::Fcos => Funop { op: FpuUnOp::Cos },
        Opcode::Fexp => Funop { op: FpuUnOp::Exp },
        Opcode::Fln => Funop { op: FpuUnOp::Ln },
        Opcode::Fxch => Fxch { i: ra & 7 },
        Opcode::FldSt => FldSt { i: ra & 7 },
        Opcode::Fcomip => Fcomip,
        Opcode::Fpop => Fpop,
    };
    Ok((insn, if op.has_imm_word() { 2 } else { 1 }))
}

/// Render one instruction as assembly text (for debugging and the
/// `faultlab disasm` subcommand).
pub fn disasm(insn: &Insn) -> String {
    use Insn::*;
    match *insn {
        Nop => "nop".into(),
        MovI { rd, imm } => format!("mov {rd}, {imm:#x}"),
        Mov { rd, rs } => format!("mov {rd}, {rs}"),
        Alu { op, rd, ra, rb } => {
            let n = format!("{op:?}").to_lowercase();
            format!("{n} {rd}, {ra}, {rb}")
        }
        AddI { rd, ra, imm } => format!("add {rd}, {ra}, {:#x}", imm as i32),
        MulI { rd, ra, imm } => format!("mul {rd}, {ra}, {:#x}", imm as i32),
        Cmp { ra, rb } => format!("cmp {ra}, {rb}"),
        CmpI { ra, imm } => format!("cmp {ra}, {:#x}", imm as i32),
        J { cond, target } => format!("j{cond} {target:#010x}"),
        JmpR { rs } => format!("jmp [{rs}]"),
        Ld { rd, base, off } => format!("ld {rd}, [{base}{off:+}]"),
        St { rb, base, off } => format!("st [{base}{off:+}], {rb}"),
        LdG { rd, addr } => format!("ld {rd}, [{addr:#010x}]"),
        StG { rs, addr } => format!("st [{addr:#010x}], {rs}"),
        LdB { rd, base, off } => format!("ldb {rd}, [{base}{off:+}]"),
        StB { rb, base, off } => format!("stb [{base}{off:+}], {rb}"),
        Push { rs } => format!("push {rs}"),
        Pop { rd } => format!("pop {rd}"),
        Call { target } => format!("call {target:#010x}"),
        CallR { rs } => format!("call [{rs}]"),
        Ret => "ret".into(),
        Enter { frame } => format!("enter {frame}"),
        Leave => "leave".into(),
        Sys { num } => format!("sys {num}"),
        Halt => "halt".into(),
        Fld { base, off } => format!("fld qword [{base}{off:+}]"),
        FldG { addr } => format!("fld qword [{addr:#010x}]"),
        Fst { base, off } => format!("fst qword [{base}{off:+}]"),
        Fstp { base, off } => format!("fstp qword [{base}{off:+}]"),
        FstpG { addr } => format!("fstp qword [{addr:#010x}]"),
        Fild { base, off } => format!("fild dword [{base}{off:+}]"),
        Fistp { base, off } => format!("fistp dword [{base}{off:+}]"),
        FildR { rs } => format!("fild {rs}"),
        FistpR { rd } => format!("fistp {rd}"),
        Fldz => "fldz".into(),
        Fld1 => "fld1".into(),
        Fbinp { op } => format!("f{}p", format!("{op:?}").to_lowercase()),
        Funop { op } => format!("f{}", format!("{op:?}").to_lowercase()),
        Fxch { i } => format!("fxch st{i}"),
        FldSt { i } => format!("fld st{i}"),
        Fcomip => "fcomip".into(),
        Fpop => "fpop".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Insn) {
        let e = encode(&i);
        let (d, n) = decode(&e.to_words()).unwrap_or_else(|err| panic!("{i:?}: {err}"));
        assert_eq!(d, i);
        assert_eq!(n, e.len_words());
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::insn::{AluOp::*, FpuBinOp, FpuUnOp};
        use Gpr::*;
        for i in [
            Insn::Nop,
            Insn::MovI {
                rd: Eax,
                imm: 0xdeadbeef,
            },
            Insn::Mov { rd: Esi, rs: Edi },
            Insn::Alu {
                op: Add,
                rd: Eax,
                ra: Ebx,
                rb: Ecx,
            },
            Insn::Alu {
                op: Sar,
                rd: Edx,
                ra: Edx,
                rb: Ecx,
            },
            Insn::AddI {
                rd: Esp,
                ra: Esp,
                imm: (-8i32) as u32,
            },
            Insn::MulI {
                rd: Eax,
                ra: Eax,
                imm: 24,
            },
            Insn::Cmp { ra: Eax, rb: Ebx },
            Insn::CmpI { ra: Ecx, imm: 100 },
            Insn::J {
                cond: Cond::Lt,
                target: 0x08048100,
            },
            Insn::JmpR { rs: Eax },
            Insn::Ld {
                rd: Eax,
                base: Ebp,
                off: -12,
            },
            Insn::St {
                rb: Ecx,
                base: Ebp,
                off: 2047,
            },
            Insn::Ld {
                rd: Eax,
                base: Ebp,
                off: -2048,
            },
            Insn::LdG {
                rd: Eax,
                addr: 0x0a000000,
            },
            Insn::StG {
                rs: Edx,
                addr: 0x0a000004,
            },
            Insn::LdB {
                rd: Eax,
                base: Esi,
                off: 3,
            },
            Insn::StB {
                rb: Eax,
                base: Edi,
                off: 0,
            },
            Insn::Push { rs: Ebp },
            Insn::Pop { rd: Ebp },
            Insn::Call { target: 0x40000000 },
            Insn::CallR { rs: Eax },
            Insn::Ret,
            Insn::Enter { frame: 64 },
            Insn::Leave,
            Insn::Sys { num: 17 },
            Insn::Halt,
            Insn::Fld {
                base: Ebp,
                off: -16,
            },
            Insn::FldG { addr: 0x0a000010 },
            Insn::Fst {
                base: Ebp,
                off: -16,
            },
            Insn::Fstp {
                base: Ebp,
                off: -24,
            },
            Insn::FstpG { addr: 0x0a000018 },
            Insn::Fild { base: Ebp, off: 8 },
            Insn::Fistp { base: Ebp, off: 8 },
            Insn::FildR { rs: Eax },
            Insn::FistpR { rd: Eax },
            Insn::Fldz,
            Insn::Fld1,
            Insn::Fbinp { op: FpuBinOp::Add },
            Insn::Fbinp { op: FpuBinOp::DivR },
            Insn::Funop { op: FpuUnOp::Sqrt },
            Insn::Funop { op: FpuUnOp::Ln },
            Insn::Fxch { i: 1 },
            Insn::FldSt { i: 2 },
            Insn::Fcomip,
            Insn::Fpop,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn offsets_sign_extend() {
        assert_eq!(off_from_aux(aux_from_off(-1)), -1);
        assert_eq!(off_from_aux(aux_from_off(-2048)), -2048);
        assert_eq!(off_from_aux(aux_from_off(2047)), 2047);
        assert_eq!(off_from_aux(aux_from_off(0)), 0);
    }

    #[test]
    fn illegal_opcode_reported() {
        // 0x00 is undefined.
        assert_eq!(decode(&[0u32]), Err(DecodeError::IllegalOpcode(0)));
    }

    #[test]
    fn truncated_immediate_reported() {
        let e = encode(&Insn::Call { target: 0x1000 });
        let w = e.to_words();
        assert_eq!(decode(&w[..1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn illegal_condition_field_reported() {
        // Build a J instruction with cond field = 13 (undefined).
        let w0 = (Opcode::J as u32) | (13 << 8);
        assert_eq!(decode(&[w0, 0]), Err(DecodeError::IllegalField));
    }

    #[test]
    fn disasm_smoke() {
        assert_eq!(disasm(&Insn::Nop), "nop");
        assert_eq!(disasm(&Insn::Push { rs: Gpr::Ebp }), "push ebp");
        assert!(disasm(&Insn::J {
            cond: Cond::Ne,
            target: 0x1000
        })
        .starts_with("jne"));
    }
}
