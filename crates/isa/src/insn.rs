//! Decoded instruction representation and branch conditions.

use crate::opcode::Opcode;
use crate::reg::Gpr;
use std::fmt;

/// Branch conditions for the `J` instruction, encoded in its `ra` field.
///
/// Signed conditions (`Lt`/`Le`/`Gt`/`Ge`) follow integer `CMP`; unsigned
/// conditions (`B`/`Ae`) follow x87 `FCOMIP`, which reports through CF/ZF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Unconditional.
    Always = 0,
    /// ZF set.
    Eq = 1,
    /// ZF clear.
    Ne = 2,
    /// Signed less-than (SF != OF).
    Lt = 3,
    /// Signed less-or-equal (ZF or SF != OF).
    Le = 4,
    /// Signed greater-than.
    Gt = 5,
    /// Signed greater-or-equal.
    Ge = 6,
    /// Unsigned below (CF set) — used after `FCOMIP`.
    B = 7,
    /// Unsigned above-or-equal (CF clear).
    Ae = 8,
    /// Unsigned below-or-equal (CF or ZF).
    Be = 9,
    /// Unsigned above (neither CF nor ZF).
    A = 10,
}

impl Cond {
    /// Decode a 4-bit condition field. Out-of-range values (11–15) decode
    /// to `None`, which the machine treats as an illegal instruction.
    pub fn from_index(i: u8) -> Option<Cond> {
        use Cond::*;
        Some(match i {
            0 => Always,
            1 => Eq,
            2 => Ne,
            3 => Lt,
            4 => Le,
            5 => Gt,
            6 => Ge,
            7 => B,
            8 => Ae,
            9 => Be,
            10 => A,
            _ => return None,
        })
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Always => "mp",
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "l",
            Cond::Le => "le",
            Cond::Gt => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::Be => "be",
            Cond::A => "a",
        };
        f.write_str(s)
    }
}

/// A decoded FaultLab instruction.
///
/// Field conventions: `rd` destination, `ra`/`rb`/`rs` sources, `base` an
/// address register, `off` a sign-extended 12-bit displacement, `imm` a
/// 32-bit immediate from the trailing word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// No operation.
    Nop,
    /// `rd <- imm`.
    MovI { rd: Gpr, imm: u32 },
    /// `rd <- rs`.
    Mov { rd: Gpr, rs: Gpr },
    /// Three-operand integer ALU operation.
    Alu {
        op: AluOp,
        rd: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    /// `rd <- ra + imm`.
    AddI { rd: Gpr, ra: Gpr, imm: u32 },
    /// `rd <- ra * imm`.
    MulI { rd: Gpr, ra: Gpr, imm: u32 },
    /// Compare registers, set EFLAGS.
    Cmp { ra: Gpr, rb: Gpr },
    /// Compare register with immediate, set EFLAGS.
    CmpI { ra: Gpr, imm: u32 },
    /// Conditional jump to absolute address `target`.
    J { cond: Cond, target: u32 },
    /// Indirect jump.
    JmpR { rs: Gpr },
    /// `rd <- mem32[base + off]`.
    Ld { rd: Gpr, base: Gpr, off: i32 },
    /// `mem32[base + off] <- rb`.
    St { rb: Gpr, base: Gpr, off: i32 },
    /// `rd <- mem32[addr]`.
    LdG { rd: Gpr, addr: u32 },
    /// `mem32[addr] <- rs`.
    StG { rs: Gpr, addr: u32 },
    /// `rd <- zx(mem8[base + off])`.
    LdB { rd: Gpr, base: Gpr, off: i32 },
    /// `mem8[base + off] <- rb & 0xff`.
    StB { rb: Gpr, base: Gpr, off: i32 },
    /// Push `rs`.
    Push { rs: Gpr },
    /// Pop into `rd`.
    Pop { rd: Gpr },
    /// Direct call.
    Call { target: u32 },
    /// Indirect call.
    CallR { rs: Gpr },
    /// Return.
    Ret,
    /// Prologue: push EBP; EBP <- ESP; ESP -= frame.
    Enter { frame: u32 },
    /// Epilogue: ESP <- EBP; pop EBP.
    Leave,
    /// System call with 12-bit number.
    Sys { num: u16 },
    /// Halt; exit status in EAX.
    Halt,

    /// Push f64 from `[base + off]`.
    Fld { base: Gpr, off: i32 },
    /// Push f64 from absolute `addr`.
    FldG { addr: u32 },
    /// Store st0 (no pop) to `[base + off]`.
    Fst { base: Gpr, off: i32 },
    /// Store st0 and pop.
    Fstp { base: Gpr, off: i32 },
    /// Store st0 to absolute `addr` and pop.
    FstpG { addr: u32 },
    /// Push i32 from memory, converted.
    Fild { base: Gpr, off: i32 },
    /// Round st0 to i32, store, pop.
    Fistp { base: Gpr, off: i32 },
    /// Push the value of a GPR, converted.
    FildR { rs: Gpr },
    /// Pop st0 as i32 into a GPR.
    FistpR { rd: Gpr },
    /// Push +0.0.
    Fldz,
    /// Push +1.0.
    Fld1,
    /// FPU stack arithmetic: st1 <- st1 op st0; pop.
    Fbinp { op: FpuBinOp },
    /// Unary operation on st0.
    Funop { op: FpuUnOp },
    /// Exchange st0 and st(i).
    Fxch { i: u8 },
    /// Push a copy of st(i).
    FldSt { i: u8 },
    /// Compare st0 with st1 into EFLAGS, pop.
    Fcomip,
    /// Free st0.
    Fpop,
}

/// Integer ALU operations folded into [`Insn::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

/// FPU binary stack operations folded into [`Insn::Fbinp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuBinOp {
    Add,
    Sub,
    SubR,
    Mul,
    Div,
    DivR,
}

/// FPU unary operations folded into [`Insn::Funop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuUnOp {
    Chs,
    Abs,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
}

impl Insn {
    /// The opcode under which this instruction encodes.
    pub fn opcode(&self) -> Opcode {
        match self {
            Insn::Nop => Opcode::Nop,
            Insn::MovI { .. } => Opcode::MovI,
            Insn::Mov { .. } => Opcode::Mov,
            Insn::Alu { op, .. } => match op {
                AluOp::Add => Opcode::Add,
                AluOp::Sub => Opcode::Sub,
                AluOp::Mul => Opcode::Mul,
                AluOp::Div => Opcode::Div,
                AluOp::Mod => Opcode::Mod,
                AluOp::And => Opcode::And,
                AluOp::Or => Opcode::Or,
                AluOp::Xor => Opcode::Xor,
                AluOp::Shl => Opcode::Shl,
                AluOp::Shr => Opcode::Shr,
                AluOp::Sar => Opcode::Sar,
            },
            Insn::AddI { .. } => Opcode::AddI,
            Insn::MulI { .. } => Opcode::MulI,
            Insn::Cmp { .. } => Opcode::Cmp,
            Insn::CmpI { .. } => Opcode::CmpI,
            Insn::J { .. } => Opcode::J,
            Insn::JmpR { .. } => Opcode::JmpR,
            Insn::Ld { .. } => Opcode::Ld,
            Insn::St { .. } => Opcode::St,
            Insn::LdG { .. } => Opcode::LdG,
            Insn::StG { .. } => Opcode::StG,
            Insn::LdB { .. } => Opcode::LdB,
            Insn::StB { .. } => Opcode::StB,
            Insn::Push { .. } => Opcode::Push,
            Insn::Pop { .. } => Opcode::Pop,
            Insn::Call { .. } => Opcode::Call,
            Insn::CallR { .. } => Opcode::CallR,
            Insn::Ret => Opcode::Ret,
            Insn::Enter { .. } => Opcode::Enter,
            Insn::Leave => Opcode::Leave,
            Insn::Sys { .. } => Opcode::Sys,
            Insn::Halt => Opcode::Halt,
            Insn::Fld { .. } => Opcode::Fld,
            Insn::FldG { .. } => Opcode::FldG,
            Insn::Fst { .. } => Opcode::Fst,
            Insn::Fstp { .. } => Opcode::Fstp,
            Insn::FstpG { .. } => Opcode::FstpG,
            Insn::Fild { .. } => Opcode::Fild,
            Insn::Fistp { .. } => Opcode::Fistp,
            Insn::FildR { .. } => Opcode::FildR,
            Insn::FistpR { .. } => Opcode::FistpR,
            Insn::Fldz => Opcode::Fldz,
            Insn::Fld1 => Opcode::Fld1,
            Insn::Fbinp { op } => match op {
                FpuBinOp::Add => Opcode::Faddp,
                FpuBinOp::Sub => Opcode::Fsubp,
                FpuBinOp::SubR => Opcode::Fsubrp,
                FpuBinOp::Mul => Opcode::Fmulp,
                FpuBinOp::Div => Opcode::Fdivp,
                FpuBinOp::DivR => Opcode::Fdivrp,
            },
            Insn::Funop { op } => match op {
                FpuUnOp::Chs => Opcode::Fchs,
                FpuUnOp::Abs => Opcode::Fabs,
                FpuUnOp::Sqrt => Opcode::Fsqrt,
                FpuUnOp::Sin => Opcode::Fsin,
                FpuUnOp::Cos => Opcode::Fcos,
                FpuUnOp::Exp => Opcode::Fexp,
                FpuUnOp::Ln => Opcode::Fln,
            },
            Insn::Fxch { .. } => Opcode::Fxch,
            Insn::FldSt { .. } => Opcode::FldSt,
            Insn::Fcomip => Opcode::Fcomip,
            Insn::Fpop => Opcode::Fpop,
        }
    }

    /// Length in 32-bit words when encoded.
    pub fn encoded_words(&self) -> usize {
        if self.opcode().has_imm_word() {
            2
        } else {
            1
        }
    }

    /// Whether this instruction transfers control (ends a basic block).
    /// The machine's basic-block counter — the time axis of the paper's
    /// working-set plots (Tables 5–7) — increments on these.
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            Insn::J { .. }
                | Insn::JmpR { .. }
                | Insn::Call { .. }
                | Insn::CallR { .. }
                | Insn::Ret
                | Insn::Halt
                | Insn::Sys { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_roundtrip() {
        for i in 0..11u8 {
            let c = Cond::from_index(i).unwrap();
            assert_eq!(c as u8, i);
        }
        for i in 11..16u8 {
            assert!(Cond::from_index(i).is_none());
        }
    }

    #[test]
    fn block_end_classification() {
        assert!(Insn::Ret.is_block_end());
        assert!(Insn::Halt.is_block_end());
        assert!(Insn::J {
            cond: Cond::Eq,
            target: 0
        }
        .is_block_end());
        assert!(!Insn::Nop.is_block_end());
        assert!(!Insn::Fldz.is_block_end());
    }

    #[test]
    fn encoded_words_match_opcode_flag() {
        assert_eq!(
            Insn::MovI {
                rd: Gpr::Eax,
                imm: 7
            }
            .encoded_words(),
            2
        );
        assert_eq!(
            Insn::Mov {
                rd: Gpr::Eax,
                rs: Gpr::Ebx
            }
            .encoded_words(),
            1
        );
        assert_eq!(Insn::Call { target: 0x08048000 }.encoded_words(), 2);
    }
}
