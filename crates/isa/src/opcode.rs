//! Opcode assignments.
//!
//! Opcode values are deliberately *sparse and scattered* across the 8-bit
//! space (roughly 60 of 256 values are defined, none adjacent). A single
//! bit flip in the opcode byte of an encoded instruction therefore lands on
//! an undefined value most of the time, raising SIGILL — the dominant
//! manifestation the paper observed for text-section faults that hit the
//! working set. The remaining flips mutate one legal operation into another
//! (e.g. `ADD` → `SUB`), which silently corrupts results instead.

/// Operation codes for the FaultLab ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    // --- integer / control ---------------------------------------------
    /// No operation.
    Nop = 0x05,
    /// `rd <- imm32` (trailing word).
    MovI = 0x11,
    /// `rd <- rs`.
    Mov = 0x13,
    /// `rd <- ra + rb` (wrapping).
    Add = 0x17,
    /// `rd <- ra - rb` (wrapping).
    Sub = 0x19,
    /// `rd <- ra * rb` (wrapping, low 32 bits).
    Mul = 0x1D,
    /// `rd <- ra / rb` (signed; divide by zero raises SIGFPE).
    Div = 0x23,
    /// `rd <- ra % rb` (signed; divide by zero raises SIGFPE).
    Mod = 0x29,
    /// `rd <- ra & rb`.
    And = 0x2B,
    /// `rd <- ra | rb`.
    Or = 0x2F,
    /// `rd <- ra ^ rb`.
    Xor = 0x35,
    /// `rd <- ra << (rb & 31)`.
    Shl = 0x3B,
    /// `rd <- ra >> (rb & 31)` (logical).
    Shr = 0x3D,
    /// `rd <- ra >> (rb & 31)` (arithmetic).
    Sar = 0x43,
    /// `rd <- ra + imm32` (trailing word).
    AddI = 0x47,
    /// `rd <- ra * imm32` (trailing word).
    MulI = 0x4B,
    /// Compare `ra` with `rb`; set EFLAGS.
    Cmp = 0x53,
    /// Compare `ra` with imm32; set EFLAGS (trailing word).
    CmpI = 0x59,
    /// Conditional/unconditional jump to absolute imm32 (trailing word);
    /// condition encoded in the `ra` field.
    J = 0x61,
    /// Indirect jump to the address in `rs`.
    JmpR = 0x67,
    /// `rd <- mem32[ra + off12]`.
    Ld = 0x6B,
    /// `mem32[ra + off12] <- rb`.
    St = 0x6D,
    /// `rd <- mem32[imm32]` (trailing word).
    LdG = 0x71,
    /// `mem32[imm32] <- rs` (trailing word).
    StG = 0x79,
    /// `rd <- zero-extend mem8[ra + off12]`.
    LdB = 0x7F,
    /// `mem8[ra + off12] <- low byte of rb`.
    StB = 0x83,
    /// Push `rs` (ESP -= 4).
    Push = 0x89,
    /// Pop into `rd` (ESP += 4).
    Pop = 0x8B,
    /// Call absolute imm32: push return address, jump (trailing word).
    Call = 0x95,
    /// Call the address in `rs`.
    CallR = 0x97,
    /// Return: pop EIP.
    Ret = 0x9D,
    /// Function prologue: push EBP; EBP <- ESP; ESP -= imm32 (trailing word).
    Enter = 0xA3,
    /// Function epilogue: ESP <- EBP; pop EBP.
    Leave = 0xA7,
    /// System call; number in the 12-bit aux field.
    Sys = 0xAD,
    /// Halt the machine; exit status in EAX.
    Halt = 0xB3,

    // --- x87-style FPU ---------------------------------------------------
    /// Push `mem_f64[ra + off12]` onto the FPU stack (extended to 80 bits).
    Fld = 0xB5,
    /// Push `mem_f64[imm32]` (trailing word).
    FldG = 0xB9,
    /// Store st0 to `mem_f64[ra + off12]` (no pop; rounds 80 -> 64 bits).
    Fst = 0xBF,
    /// Store st0 and pop.
    Fstp = 0xC1,
    /// Store st0 to `mem_f64[imm32]` and pop (trailing word).
    FstpG = 0xC5,
    /// Push `mem_i32[ra + off12]` converted to floating point.
    Fild = 0xC7,
    /// Store st0 as i32 (round to nearest) to `mem[ra + off12]`, pop.
    Fistp = 0xCB,
    /// Push the integer value of GPR `rs` (FaultLab extension; x87 routes
    /// this through memory — see DESIGN.md).
    FildR = 0xD3,
    /// Pop st0 as i32 into GPR `rd` (FaultLab extension).
    FistpR = 0xD9,
    /// Push +0.0.
    Fldz = 0xDF,
    /// Push +1.0.
    Fld1 = 0xE3,
    /// st1 <- st1 + st0; pop.
    Faddp = 0xE5,
    /// st1 <- st1 - st0; pop.
    Fsubp = 0xE9,
    /// st1 <- st0 - st1; pop.
    Fsubrp = 0xEB,
    /// st1 <- st1 * st0; pop.
    Fmulp = 0xEF,
    /// st1 <- st1 / st0; pop.
    Fdivp = 0xF1,
    /// st1 <- st0 / st1; pop.
    Fdivrp = 0xF5,
    /// st0 <- -st0.
    Fchs = 0xFB,
    /// st0 <- |st0|.
    Fabs = 0x0B,
    /// st0 <- sqrt(st0).
    Fsqrt = 0x0D,
    /// st0 <- sin(st0).
    Fsin = 0x25,
    /// st0 <- cos(st0).
    Fcos = 0x31,
    /// st0 <- exp(st0) (FaultLab extension; x87 composes F2XM1/FSCALE).
    Fexp = 0x37,
    /// st0 <- ln(st0) (FaultLab extension; x87 composes FYL2X).
    Fln = 0x41,
    /// Exchange st0 with st(i); i in the `ra` field.
    Fxch = 0x49,
    /// Push a copy of st(i); i in the `ra` field.
    FldSt = 0x51,
    /// Compare st0 with st1, set EFLAGS (ZF/CF as x87 FCOMIP; unordered
    /// sets both), pop st0.
    Fcomip = 0x57,
    /// Free st0 (x87 idiom `fstp st(0)`).
    Fpop = 0x5B,
}

impl Opcode {
    /// Every defined opcode, in a fixed order.
    pub const ALL: [Opcode; 63] = [
        Opcode::Nop,
        Opcode::MovI,
        Opcode::Mov,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Mod,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::AddI,
        Opcode::MulI,
        Opcode::Cmp,
        Opcode::CmpI,
        Opcode::J,
        Opcode::JmpR,
        Opcode::Ld,
        Opcode::St,
        Opcode::LdG,
        Opcode::StG,
        Opcode::LdB,
        Opcode::StB,
        Opcode::Push,
        Opcode::Pop,
        Opcode::Call,
        Opcode::CallR,
        Opcode::Ret,
        Opcode::Enter,
        Opcode::Leave,
        Opcode::Sys,
        Opcode::Halt,
        Opcode::Fld,
        Opcode::FldG,
        Opcode::Fst,
        Opcode::Fstp,
        Opcode::FstpG,
        Opcode::Fild,
        Opcode::Fistp,
        Opcode::FildR,
        Opcode::FistpR,
        Opcode::Fldz,
        Opcode::Fld1,
        Opcode::Faddp,
        Opcode::Fsubp,
        Opcode::Fsubrp,
        Opcode::Fmulp,
        Opcode::Fdivp,
        Opcode::Fdivrp,
        Opcode::Fchs,
        Opcode::Fabs,
        Opcode::Fsqrt,
        Opcode::Fsin,
        Opcode::Fcos,
        Opcode::Fexp,
        Opcode::Fln,
        Opcode::Fxch,
        Opcode::FldSt,
        Opcode::Fcomip,
        Opcode::Fpop,
    ];

    /// Decode an opcode byte; `None` for the ~196 undefined values
    /// (an illegal instruction at execution time).
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x05 => Nop,
            0x11 => MovI,
            0x13 => Mov,
            0x17 => Add,
            0x19 => Sub,
            0x1D => Mul,
            0x23 => Div,
            0x29 => Mod,
            0x2B => And,
            0x2F => Or,
            0x35 => Xor,
            0x3B => Shl,
            0x3D => Shr,
            0x43 => Sar,
            0x47 => AddI,
            0x4B => MulI,
            0x53 => Cmp,
            0x59 => CmpI,
            0x61 => J,
            0x67 => JmpR,
            0x6B => Ld,
            0x6D => St,
            0x71 => LdG,
            0x79 => StG,
            0x7F => LdB,
            0x83 => StB,
            0x89 => Push,
            0x8B => Pop,
            0x95 => Call,
            0x97 => CallR,
            0x9D => Ret,
            0xA3 => Enter,
            0xA7 => Leave,
            0xAD => Sys,
            0xB3 => Halt,
            0xB5 => Fld,
            0xB9 => FldG,
            0xBF => Fst,
            0xC1 => Fstp,
            0xC5 => FstpG,
            0xC7 => Fild,
            0xCB => Fistp,
            0xD3 => FildR,
            0xD9 => FistpR,
            0xDF => Fldz,
            0xE3 => Fld1,
            0xE5 => Faddp,
            0xE9 => Fsubp,
            0xEB => Fsubrp,
            0xEF => Fmulp,
            0xF1 => Fdivp,
            0xF5 => Fdivrp,
            0xFB => Fchs,
            0x0B => Fabs,
            0x0D => Fsqrt,
            0x25 => Fsin,
            0x31 => Fcos,
            0x37 => Fexp,
            0x41 => Fln,
            0x49 => Fxch,
            0x51 => FldSt,
            0x57 => Fcomip,
            0x5B => Fpop,
            _ => return None,
        })
    }

    /// Whether instructions with this opcode carry a trailing 32-bit
    /// immediate word.
    pub fn has_imm_word(self) -> bool {
        matches!(
            self,
            Opcode::MovI
                | Opcode::AddI
                | Opcode::MulI
                | Opcode::CmpI
                | Opcode::J
                | Opcode::LdG
                | Opcode::StG
                | Opcode::Call
                | Opcode::Enter
                | Opcode::FldG
                | Opcode::FstpG
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_defined_opcodes() {
        let mut defined = 0;
        for b in 0..=255u8 {
            if let Some(op) = Opcode::from_byte(b) {
                assert_eq!(op as u8, b, "opcode {op:?} must decode to itself");
                defined += 1;
            }
        }
        assert_eq!(defined, Opcode::ALL.len());
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op as u8), Some(op));
        }
    }

    #[test]
    fn all_opcode_values_are_odd() {
        // Every defined opcode is odd, so a flip of bit 0 is always illegal.
        for op in Opcode::ALL {
            assert_eq!((op as u8) & 1, 1, "{op:?} must be odd");
        }
    }

    #[test]
    fn opcode_space_is_sparse() {
        let defined = (0..=255u8)
            .filter(|&b| Opcode::from_byte(b).is_some())
            .count();
        // At most a quarter of the space is defined, so random opcode-byte
        // corruption is far more likely to be illegal than legal.
        assert!(defined * 4 <= 256, "opcode space must stay sparse");
    }

    #[test]
    fn no_two_defined_opcodes_are_adjacent() {
        for b in 0..=254u8 {
            assert!(
                !(Opcode::from_byte(b).is_some() && Opcode::from_byte(b + 1).is_some()),
                "opcodes {b:#x} and {:#x} are adjacent",
                b + 1
            );
        }
    }

    #[test]
    fn single_bit_flips_mostly_illegal() {
        // For every defined opcode, most of its 8 single-bit neighbours
        // must be undefined; aggregate across the ISA we require >=60 %.
        let mut total = 0;
        let mut illegal = 0;
        for b in 0..=255u8 {
            if Opcode::from_byte(b).is_none() {
                continue;
            }
            for bit in 0..8 {
                total += 1;
                if Opcode::from_byte(b ^ (1 << bit)).is_none() {
                    illegal += 1;
                }
            }
        }
        assert!(
            illegal * 2 >= total,
            "only {illegal}/{total} single-bit opcode flips are illegal"
        );
    }

    #[test]
    fn imm_word_flags() {
        assert!(Opcode::Call.has_imm_word());
        assert!(Opcode::J.has_imm_word());
        assert!(!Opcode::Ret.has_imm_word());
        assert!(!Opcode::Faddp.has_imm_word());
    }
}
