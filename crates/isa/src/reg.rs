//! Register names for the FaultLab machine.
//!
//! The register file mirrors the Intel IA-32 programming model that the
//! paper injected faults into: eight 32-bit general-purpose registers, the
//! instruction pointer and EFLAGS, and the x87 FPU register set — eight
//! 80-bit data registers organised as a stack, plus the seven
//! special-purpose registers CWD, SWD, TWD, FIP, FCS, FOO and FOS (§6.1.1).

use std::fmt;

/// General-purpose 32-bit registers, numbered as on IA-32.
///
/// ESP and EBP have architectural roles (stack pointer / frame pointer) and
/// are therefore live in essentially every cycle of compiled code — one of
/// the reasons the paper measured a 38–63 % manifestation rate for faults in
/// the integer register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Gpr {
    /// Accumulator; integer return values live here.
    Eax = 0,
    /// Counter / scratch.
    Ecx = 1,
    /// Data / scratch.
    Edx = 2,
    /// Callee-saved general register.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame (base) pointer; anchors the frame chain used by the paper's
    /// stack walker.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Gpr {
    /// All eight general-purpose registers in encoding order.
    pub const ALL: [Gpr; 8] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ];

    /// Decode a 3-bit register field. Values 0–7 are all valid, so a bit
    /// flip in a register field always selects *some* live register —
    /// faithful to IA-32 where register fields have no illegal encodings.
    pub fn from_index(idx: u8) -> Gpr {
        Self::ALL[(idx & 7) as usize]
    }

    /// The encoding index of this register.
    pub fn index(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Gpr::Eax => "eax",
            Gpr::Ecx => "ecx",
            Gpr::Edx => "edx",
            Gpr::Ebx => "ebx",
            Gpr::Esp => "esp",
            Gpr::Ebp => "ebp",
            Gpr::Esi => "esi",
            Gpr::Edi => "edi",
        };
        f.write_str(s)
    }
}

/// x87 FPU special-purpose registers (§6.1.1 of the paper).
///
/// The paper found that faults in most of these do not manifest — with the
/// notable exception of TWD, the tag word, where a flip can relabel a valid
/// stack register as empty/special and so turn a number into a NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuSpecial {
    /// Control word: rounding and precision control.
    Cwd,
    /// Status word: condition codes and the TOP-of-stack field.
    Swd,
    /// Tag word: two bits per data register classifying its content
    /// (valid / zero / special / empty).
    Twd,
    /// FPU instruction pointer (offset of last FP instruction).
    Fip,
    /// FPU instruction pointer (code segment selector).
    Fcs,
    /// FPU operand pointer (offset of last FP memory operand).
    Foo,
    /// FPU operand pointer (segment selector).
    Fos,
}

impl FpuSpecial {
    /// All seven special registers.
    pub const ALL: [FpuSpecial; 7] = [
        FpuSpecial::Cwd,
        FpuSpecial::Swd,
        FpuSpecial::Twd,
        FpuSpecial::Fip,
        FpuSpecial::Fcs,
        FpuSpecial::Foo,
        FpuSpecial::Fos,
    ];
}

impl fmt::Display for FpuSpecial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpuSpecial::Cwd => "cwd",
            FpuSpecial::Swd => "swd",
            FpuSpecial::Twd => "twd",
            FpuSpecial::Fip => "fip",
            FpuSpecial::Fcs => "fcs",
            FpuSpecial::Foo => "foo",
            FpuSpecial::Fos => "fos",
        };
        f.write_str(s)
    }
}

/// Any injectable register, for fault targeting and reporting.
///
/// This is the "register axis" of the paper's fault space: the sixteen
/// 32-bit registers (§4.3 counts 512 bit targets) plus the x87 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterName {
    /// A general-purpose register.
    Gpr(Gpr),
    /// The instruction pointer.
    Eip,
    /// The flags register.
    Eflags,
    /// An 80-bit FPU data register, by *physical* index 0–7 (not
    /// stack-relative), matching how a hardware upset strikes a cell.
    St(u8),
    /// An FPU special-purpose register.
    FpuSpecial(FpuSpecial),
}

impl RegisterName {
    /// Width of the register in bits, which bounds the bit axis of the
    /// fault space for this target.
    pub fn width_bits(self) -> u32 {
        match self {
            RegisterName::Gpr(_) | RegisterName::Eip | RegisterName::Eflags => 32,
            RegisterName::St(_) => 80,
            RegisterName::FpuSpecial(_) => 16,
        }
    }
}

impl fmt::Display for RegisterName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterName::Gpr(g) => write!(f, "{g}"),
            RegisterName::Eip => f.write_str("eip"),
            RegisterName::Eflags => f.write_str("eflags"),
            RegisterName::St(i) => write!(f, "st{i}"),
            RegisterName::FpuSpecial(s) => write!(f, "{s}"),
        }
    }
}

/// EFLAGS bit positions (the subset the ISA defines, as on IA-32).
pub const EFLAGS_CF: u32 = 1 << 0;
/// Zero flag.
pub const EFLAGS_ZF: u32 = 1 << 6;
/// Sign flag.
pub const EFLAGS_SF: u32 = 1 << 7;
/// Overflow flag.
pub const EFLAGS_OF: u32 = 1 << 11;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip_index() {
        for g in Gpr::ALL {
            assert_eq!(Gpr::from_index(g.index()), g);
        }
    }

    #[test]
    fn gpr_from_index_masks_to_three_bits() {
        assert_eq!(Gpr::from_index(8), Gpr::Eax);
        assert_eq!(Gpr::from_index(0xff), Gpr::Edi);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::Esp.to_string(), "esp");
        assert_eq!(RegisterName::St(3).to_string(), "st3");
        assert_eq!(RegisterName::FpuSpecial(FpuSpecial::Twd).to_string(), "twd");
    }

    #[test]
    fn widths() {
        assert_eq!(RegisterName::Gpr(Gpr::Eax).width_bits(), 32);
        assert_eq!(RegisterName::St(0).width_bits(), 80);
        assert_eq!(RegisterName::FpuSpecial(FpuSpecial::Cwd).width_bits(), 16);
    }

    #[test]
    fn flags_are_distinct_bits() {
        let all = [EFLAGS_CF, EFLAGS_ZF, EFLAGS_SF, EFLAGS_OF];
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.count_ones(), 1);
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
