//! # fl-isa — the FaultLab instruction set architecture
//!
//! Defines the machine language executed by `fl-machine`: a 32-bit,
//! little-endian, fixed-width instruction set modelled on the Intel x86
//! programming model that the paper targets (8 general-purpose registers,
//! an EFLAGS word, and an x87-style floating-point unit with eight 80-bit
//! stack registers plus CWD/SWD/TWD/FIP/FCS/FOO/FOS special registers).
//!
//! Design points that matter for fault-sensitivity studies:
//!
//! * **Sparse opcode space.** Only ~70 of the 256 opcode values are defined,
//!   and they are scattered (not densely packed from zero), so a random bit
//!   flip in the opcode byte of a live instruction frequently produces an
//!   *illegal instruction* (SIGILL) rather than silently mutating into a
//!   neighbouring operation. This mirrors real x86, where text-section bit
//!   flips observed in the paper mostly crashed the application.
//! * **Fixed 4-byte words.** Every instruction occupies one 32-bit word;
//!   instructions that need a 32-bit immediate carry it in a second trailing
//!   word. Flips in register fields select wrong-but-live registers; flips
//!   in immediate words silently change constants, branch targets and
//!   addresses — the "innocuous or wrong-output" failure mode of the paper.
//! * **Stack-oriented FPU.** Floating-point instructions operate on a
//!   register stack addressed relative to the top-of-stack, exactly like
//!   x87, so compiled code keeps only a handful of FPU registers live
//!   (§6.1.1 of the paper observes ~4) — which is why FP-register fault
//!   injection manifests far less often than integer-register injection.

pub mod encode;
pub mod insn;
pub mod opcode;
pub mod reg;
pub mod syscall;

pub use encode::{decode, decode_at, disasm, encode, DecodeError, EncodedInsn};
pub use insn::{Cond, Insn};
pub use opcode::Opcode;
pub use reg::{FpuSpecial, Gpr, RegisterName, EFLAGS_CF, EFLAGS_OF, EFLAGS_SF, EFLAGS_ZF};
pub use syscall::Syscall;

/// Size in bytes of one instruction word.
pub const WORD: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_size_is_four() {
        assert_eq!(WORD, 4);
    }

    #[test]
    fn public_reexports_are_usable() {
        let i = Insn::Nop;
        let bytes = encode(&i);
        let (back, len) = decode(&bytes.to_words()).expect("nop decodes");
        assert_eq!(back, Insn::Nop);
        assert_eq!(len, 1);
    }
}
