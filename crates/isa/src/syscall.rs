//! System call numbers.
//!
//! The FaultLab machine exposes the services a real MPI application gets
//! from the C library, the operating system, and the MPI library through
//! a single `SYS` trap. Application-facing MPI entry points live in the
//! *library text region* (0x40000000, Figure 1 of the paper) as compiled
//! wrapper functions; each wrapper marshals arguments and issues one of the
//! `Mpi*` syscalls below, exactly as MPICH's API layer sits above its ADI.
//! The machine flags "currently inside an MPI routine" while an `Mpi*`
//! syscall (or library-text execution) is active; the malloc runtime uses
//! that flag to tag heap chunks user vs MPI (§3.2).

/// Syscall numbers carried in the 12-bit aux field of a `SYS` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Syscall {
    /// Terminate: status in EAX.
    Exit = 0,
    /// Write bytes (EAX=ptr, ECX=len) to the console stream (stdout).
    PrintStr = 1,
    /// Write the decimal rendering of EAX to the console stream.
    PrintInt = 2,
    /// Pop st0 and write it to the console with ECX significant digits.
    PrintFlt = 3,
    /// Allocate ECX bytes on the heap; pointer returned in EAX.
    /// The allocation is tagged user/MPI from the in-MPI flag (§3.2).
    Malloc = 4,
    /// Free the heap chunk at EAX.
    Free = 5,
    /// Abort after a failed internal consistency check (EAX=msg ptr,
    /// ECX=len). Classified as **Application Detected** (§5.1).
    AbortMsg = 7,
    /// Write bytes (EAX=ptr, ECX=len) to the output file stream.
    FileWrite = 8,
    /// Pop st0 and append it to the output file with ECX significant
    /// digits (plain-text output format, §4.2.1).
    FileWriteFlt = 9,
    /// Pop st0 and append its raw IEEE-754 bits to the output file
    /// (binary output format, §6.2's "a binary output format would
    /// detect more cases of incorrect output").
    FileWriteBin = 10,

    // --- MPI (issued from library wrappers at 0x40000000) ---------------
    /// MPI_Init.
    MpiInit = 16,
    /// MPI_Comm_rank: rank returned in EAX.
    MpiCommRank = 17,
    /// MPI_Comm_size: size returned in EAX.
    MpiCommSize = 18,
    /// MPI_Send: EAX=buf, ECX=len bytes, EDX=dest, EBX=tag.
    MpiSend = 19,
    /// MPI_Recv: EAX=buf, ECX=cap bytes, EDX=src (-1 = ANY_SOURCE),
    /// EBX=tag; received length returned in EAX.
    MpiRecv = 20,
    /// MPI_Barrier.
    MpiBarrier = 21,
    /// MPI_Bcast: EAX=buf, ECX=len, EDX=root.
    MpiBcast = 22,
    /// MPI_Reduce (sum of f64): EAX=sendbuf, ECX=len, EDX=root,
    /// EBX=recvbuf.
    MpiReduce = 23,
    /// MPI_Allreduce (sum of f64): EAX=sendbuf, ECX=len, EBX=recvbuf.
    MpiAllreduce = 24,
    /// MPI_Finalize.
    MpiFinalize = 25,
    /// MPI_Abort.
    MpiAbort = 26,
    /// MPI_Errhandler_set: EAX=1 registers the user error handler so
    /// argument-check failures manifest as **MPI Detected** (§5.1/§6.2)
    /// instead of aborting.
    MpiErrhandlerSet = 27,

    // --- ULFM fault-tolerance extensions (fl-ulfm) -----------------------
    /// MPIX_Comm_failure_ack: acknowledge all currently known failures.
    MpixFailureAck = 28,
    /// MPIX_Comm_failure_get_acked: bitmask of acked dead ranks in EAX.
    MpixFailureGetAcked = 29,
    /// MPIX_Comm_agree: fault-aware collective AND over EAX across the
    /// live ranks; result (with the failure bit folded in) in EAX.
    MpixAgree = 30,
    /// MPIX_Comm_shrink: rebuild the world over the survivors; the
    /// caller's new rank is returned in EAX.
    MpixShrink = 31,
    /// fl_ckpt_save: EAX=buf, ECX=bytes — copy the range into the rank's
    /// in-memory application checkpoint; bytes saved in EAX.
    CkptSave = 32,
    /// fl_ckpt_restore: EAX=buf, ECX=cap — copy the saved checkpoint back
    /// over the range; bytes restored (0 if none saved) in EAX.
    CkptRestore = 33,
}

impl Syscall {
    /// Decode a syscall number; `None` raises SIGSYS-like abnormal
    /// termination in the machine.
    pub fn from_num(n: u16) -> Option<Syscall> {
        use Syscall::*;
        Some(match n {
            0 => Exit,
            1 => PrintStr,
            2 => PrintInt,
            3 => PrintFlt,
            4 => Malloc,
            5 => Free,
            7 => AbortMsg,
            8 => FileWrite,
            9 => FileWriteFlt,
            10 => FileWriteBin,
            16 => MpiInit,
            17 => MpiCommRank,
            18 => MpiCommSize,
            19 => MpiSend,
            20 => MpiRecv,
            21 => MpiBarrier,
            22 => MpiBcast,
            23 => MpiReduce,
            24 => MpiAllreduce,
            25 => MpiFinalize,
            26 => MpiAbort,
            27 => MpiErrhandlerSet,
            28 => MpixFailureAck,
            29 => MpixFailureGetAcked,
            30 => MpixAgree,
            31 => MpixShrink,
            32 => CkptSave,
            33 => CkptRestore,
            _ => return None,
        })
    }

    /// Whether this syscall is an MPI operation (sets the in-MPI flag used
    /// for heap-chunk tagging, and traps to the rank scheduler).
    pub fn is_mpi(self) -> bool {
        (self as u16) >= Syscall::MpiInit as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for n in 0..64u16 {
            if let Some(s) = Syscall::from_num(n) {
                assert_eq!(s as u16, n);
            }
        }
    }

    #[test]
    fn mpi_classification() {
        assert!(Syscall::MpiSend.is_mpi());
        assert!(Syscall::MpiFinalize.is_mpi());
        assert!(!Syscall::Malloc.is_mpi());
        assert!(!Syscall::PrintFlt.is_mpi());
    }

    #[test]
    fn ulfm_syscalls_trap_to_the_scheduler() {
        // The MPIX extensions and the checkpoint builtins all go through
        // the rank scheduler (they need world-level failure knowledge).
        for s in [
            Syscall::MpixFailureAck,
            Syscall::MpixFailureGetAcked,
            Syscall::MpixAgree,
            Syscall::MpixShrink,
            Syscall::CkptSave,
            Syscall::CkptRestore,
        ] {
            assert!(s.is_mpi(), "{s:?}");
        }
    }

    #[test]
    fn undefined_numbers_are_none() {
        assert!(Syscall::from_num(6).is_none());
        assert!(Syscall::from_num(11).is_none());
        assert!(Syscall::from_num(999).is_none());
    }
}
