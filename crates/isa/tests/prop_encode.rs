//! Property-based tests for the instruction encoder/decoder.

use fl_isa::insn::{AluOp, FpuBinOp, FpuUnOp};
use fl_isa::{decode, encode, Cond, Gpr, Insn, Opcode};
use proptest::prelude::*;

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..8).prop_map(Gpr::from_index)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..11).prop_map(|i| Cond::from_index(i).unwrap())
}

fn arb_off() -> impl Strategy<Value = i32> {
    -2048i32..2048
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Mod),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        (arb_gpr(), any::<u32>()).prop_map(|(rd, imm)| Insn::MovI { rd, imm }),
        (arb_gpr(), arb_gpr()).prop_map(|(rd, rs)| Insn::Mov { rd, rs }),
        (arb_alu(), arb_gpr(), arb_gpr(), arb_gpr()).prop_map(|(op, rd, ra, rb)| Insn::Alu {
            op,
            rd,
            ra,
            rb
        }),
        (arb_gpr(), arb_gpr(), any::<u32>()).prop_map(|(rd, ra, imm)| Insn::AddI { rd, ra, imm }),
        (arb_gpr(), arb_gpr()).prop_map(|(ra, rb)| Insn::Cmp { ra, rb }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Insn::J { cond, target }),
        (arb_gpr(), arb_gpr(), arb_off()).prop_map(|(rd, base, off)| Insn::Ld { rd, base, off }),
        (arb_gpr(), arb_gpr(), arb_off()).prop_map(|(rb, base, off)| Insn::St { rb, base, off }),
        (arb_gpr(), arb_gpr(), arb_off()).prop_map(|(rd, base, off)| Insn::LdB { rd, base, off }),
        (arb_gpr(), arb_gpr(), arb_off()).prop_map(|(rb, base, off)| Insn::StB { rb, base, off }),
        arb_gpr().prop_map(|rs| Insn::Push { rs }),
        arb_gpr().prop_map(|rd| Insn::Pop { rd }),
        any::<u32>().prop_map(|target| Insn::Call { target }),
        Just(Insn::Ret),
        (0u32..4096).prop_map(|frame| Insn::Enter { frame }),
        Just(Insn::Leave),
        (0u16..4096).prop_map(|num| Insn::Sys { num }),
        Just(Insn::Halt),
        (arb_gpr(), arb_off()).prop_map(|(base, off)| Insn::Fld { base, off }),
        (arb_gpr(), arb_off()).prop_map(|(base, off)| Insn::Fstp { base, off }),
        any::<u32>().prop_map(|addr| Insn::FldG { addr }),
        Just(Insn::Fldz),
        Just(Insn::Fbinp { op: FpuBinOp::Mul }),
        Just(Insn::Funop { op: FpuUnOp::Sqrt }),
        (0u8..8).prop_map(|i| Insn::Fxch { i }),
        Just(Insn::Fcomip),
        Just(Insn::Fpop),
    ]
}

proptest! {
    /// Every encodable instruction decodes back to itself.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let e = encode(&insn);
        let (d, n) = decode(&e.to_words()).unwrap();
        prop_assert_eq!(d, insn);
        prop_assert_eq!(n, e.len_words());
    }

    /// Decoding never panics on arbitrary words — corrupted text either
    /// decodes to a legal instruction or returns an error, exactly the
    /// dichotomy the fault injector relies on.
    #[test]
    fn decode_total_on_random_words(w0 in any::<u32>(), w1 in any::<u32>()) {
        let _ = decode(&[w0, w1]);
    }

    /// A decoded random word re-encodes to the same first word modulo
    /// don't-care fields (we only check it decodes to the same insn).
    #[test]
    fn decode_encode_stable(w0 in any::<u32>(), w1 in any::<u32>()) {
        if let Ok((insn, _)) = decode(&[w0, w1]) {
            let e = encode(&insn);
            let (again, _) = decode(&e.to_words()).unwrap();
            prop_assert_eq!(insn, again);
        }
    }

    /// The byte rendering is little-endian and word-aligned.
    #[test]
    fn bytes_match_words(insn in arb_insn()) {
        let e = encode(&insn);
        let bytes = e.to_bytes();
        let words = e.to_words();
        prop_assert_eq!(bytes.len(), words.len() * 4);
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(&bytes[i * 4..i * 4 + 4], &w.to_le_bytes());
        }
    }

    /// Opcode byte of the encoding always matches `Insn::opcode`.
    #[test]
    fn opcode_byte_matches(insn in arb_insn()) {
        let e = encode(&insn);
        let b = e.to_bytes()[0];
        prop_assert_eq!(Opcode::from_byte(b), Some(insn.opcode()));
    }
}
