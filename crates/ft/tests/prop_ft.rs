//! Property tests of the fl-ft recovery contracts.
//!
//! Satellite invariants of the ft tentpole:
//!
//! 1. **Shrink purity** — a kill at *any* block clock, detected and
//!    recovered via `shrink()`, yields a survivor world whose event
//!    stream is bit-identical to a cold run of the shrunken world, on
//!    the fast and slow execution paths alike. Shrink must not leak
//!    detector residue, carried faults, or scheduler state into the
//!    rebuilt world.
//! 2. **Vote soundness** — a single corrupted replica is always
//!    outvoted (the job finishes clean with the golden answer), and two
//!    distinctly-corrupted replicas of three are *reported*, never
//!    silently masked: a clean final exit always carries the golden
//!    output.

use fl_apps::{App, AppKind, AppParams, Golden};
use fl_ft::{run_replicated, shrink, FtPolicy, RankKill};
use fl_mpi::{FailureDetector, MessageFault, MpiWorld, WorldExit};
use proptest::prelude::*;
use std::sync::OnceLock;

fn fixture() -> &'static (App, Golden, u64) {
    static FIX: OnceLock<(App, Golden, u64)> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let golden = app.golden(2_000_000_000);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        (app, golden, budget)
    })
}

/// Detect one drawn kill and return the post-shrink survivor world plus
/// the matching cold world, both run to completion.
fn shrink_pair(
    rank: u16,
    at_blocks: u64,
    wedge: bool,
    fastpath: bool,
) -> Result<(MpiWorld, MpiWorld), proptest::test_runner::TestCaseError> {
    let (app, _, budget) = fixture();
    let mut cfg = app.world_config(*budget);
    cfg.machine.obs_capacity = 1024;
    cfg.machine.fastpath = fastpath;
    cfg.ft = FailureDetector {
        enabled: true,
        ..Default::default()
    };
    let mut w = MpiWorld::new(&app.image, cfg);
    w.set_rank_kill(RankKill {
        rank,
        at_blocks,
        wedge,
    });
    let exit = w.run();
    prop_assert!(
        matches!(exit, WorldExit::RankFailed { rank: r, .. } if r == rank),
        "kill of rank {rank} @ {at_blocks} must be detected, got {exit:?}"
    );
    let mut survivor = shrink(&app.image, cfg);
    prop_assert_eq!(survivor.run(), WorldExit::Clean);
    let mut scfg = cfg;
    scfg.nranks -= 1;
    let mut cold = MpiWorld::new(&app.image, scfg);
    prop_assert_eq!(cold.run(), WorldExit::Clean);
    Ok((survivor, cold))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A kill at any block clock, on either execution path: the shrink
    /// survivor's event stream and output are bit-identical to a cold
    /// run of the shrunken world.
    #[test]
    fn shrink_survivor_matches_cold_shrunken_run(
        rank_pick in any::<u64>(),
        clock_pick in any::<u64>(),
        wedge in any::<bool>(),
        fastpath in any::<bool>(),
    ) {
        let (app, golden, _) = fixture();
        let rank = (rank_pick % app.params.nranks as u64) as u16;
        let blocks = golden.blocks[rank as usize].max(2);
        let at_blocks = 1 + clock_pick % (blocks - 1);
        let (survivor, cold) = shrink_pair(rank, at_blocks, wedge, fastpath)?;
        prop_assert_eq!(
            survivor.event_streams(),
            cold.event_streams(),
            "survivor stream diverged from cold shrunken run (fastpath={fastpath})"
        );
        prop_assert_eq!(app.comparable_output(&survivor), app.comparable_output(&cold));
    }

    /// The survivor stream is also invariant across the fast/slow
    /// execution paths — shrinking at the snapshotless cold boundary
    /// must not expose TLB or dispatch state.
    #[test]
    fn shrink_survivor_is_fastpath_invariant(
        rank_pick in any::<u64>(),
        clock_pick in any::<u64>(),
        wedge in any::<bool>(),
    ) {
        let (app, golden, _) = fixture();
        let rank = (rank_pick % app.params.nranks as u64) as u16;
        let blocks = golden.blocks[rank as usize].max(2);
        let at_blocks = 1 + clock_pick % (blocks - 1);
        let (fast, _) = shrink_pair(rank, at_blocks, wedge, true)?;
        let (slow, _) = shrink_pair(rank, at_blocks, wedge, false)?;
        prop_assert_eq!(fast.event_streams(), slow.event_streams());
        prop_assert_eq!(app.comparable_output(&fast), app.comparable_output(&slow));
    }
}

/// Per-rank output digests of a clean tracked run, for telling an
/// effect-free fault apart from one that only perturbs wire traffic.
fn clean_digests() -> &'static Vec<u32> {
    static D: OnceLock<Vec<u32>> = OnceLock::new();
    D.get_or_init(|| {
        let (app, _, budget) = fixture();
        let mut cfg = app.world_config(*budget);
        cfg.track_digests = true;
        let mut w = MpiWorld::new(&app.image, cfg);
        assert_eq!(w.run(), WorldExit::Clean);
        (0..cfg.nranks).map(|r| w.out_digest(r)).collect()
    })
}

/// Run one fault in a lone tracked world: (exit, output, digests).
fn solo(app: &App, budget: u64, fault: MessageFault) -> (WorldExit, Vec<u8>, Vec<u32>) {
    let mut cfg = app.world_config(budget);
    cfg.track_digests = true;
    let mut w = MpiWorld::new(&app.image, cfg);
    w.set_message_fault(fault);
    let exit = w.run();
    let digs = (0..cfg.nranks).map(|r| w.out_digest(r)).collect();
    (exit, app.comparable_output(&w), digs)
}

/// Does this fault manifest at all when run in a lone world?
fn manifests_solo(app: &App, golden: &Golden, budget: u64, fault: MessageFault) -> bool {
    let (exit, out, _) = solo(app, budget, fault);
    exit != WorldExit::Clean || out != golden.output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One corrupted replica of three, wherever the corruption lands and
    /// whichever replica carries it: the two clean replicas always form
    /// the majority, the job finishes clean with the golden answer, and
    /// a fault that manifests solo costs the corrupt replica its seat.
    #[test]
    fn single_corrupt_replica_is_always_outvoted(
        rank_pick in any::<u64>(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
        replica_pick in any::<u64>(),
    ) {
        let (app, golden, budget) = fixture();
        let budget = *budget;
        let rank = (rank_pick % app.params.nranks as u64) as u16;
        let fault = MessageFault {
            rank,
            at_recv_byte: byte_pick % golden.recv_bytes[rank as usize].max(1),
            bit,
        };
        let corrupt = (replica_pick % 3) as u16;
        let (winner, report) = run_replicated(
            &app.image,
            app.world_config(budget),
            &FtPolicy::default(),
            |r, w| {
                if r == corrupt {
                    w.set_message_fault(fault);
                }
            },
            |w| app.comparable_output(w),
        );
        prop_assert_eq!(&report.exit, &WorldExit::Clean, "{fault:?} on replica {corrupt}");
        prop_assert_eq!(app.comparable_output(&winner), golden.output.clone());
        if manifests_solo(app, golden, budget, fault) {
            prop_assert!(
                report.votes >= 1,
                "{fault:?} manifests solo but nobody was voted out"
            );
        }
    }

    /// Two of three replicas corrupted, each differently: the vote may
    /// never silently bless a wrong answer. A clean verdict always
    /// carries the golden output; two faults that each manifest solo
    /// with distinct effects are always *reported* (no-majority
    /// detection or the faults' own crash/hang), never a clean exit;
    /// and two fully effect-free faults leave the run clean with
    /// nobody voted out.
    #[test]
    fn two_of_three_corruption_is_reported_never_masked(
        rank_a in any::<u64>(), byte_a in any::<u64>(), bit_a in 0u8..8,
        rank_b in any::<u64>(), byte_b in any::<u64>(), bit_b in 0u8..8,
    ) {
        let (app, golden, budget) = fixture();
        let budget = *budget;
        let draw = |rp: u64, bp: u64, bit: u8| {
            let rank = (rp % app.params.nranks as u64) as u16;
            MessageFault {
                rank,
                at_recv_byte: bp % golden.recv_bytes[rank as usize].max(1),
                bit,
            }
        };
        let fa = draw(rank_a, byte_a, bit_a);
        let fb = draw(rank_b, byte_b, bit_b);
        if fa == fb {
            // Identical draws are the single-corruption case in disguise
            // (two replicas failing identically IS a majority — the known
            // limit of duplicate-fault replication).
            return Ok(());
        }
        let (ea, oa, da) = solo(app, budget, fa);
        let (eb, ob, db) = solo(app, budget, fb);
        let man_a = ea != WorldExit::Clean || oa != golden.output;
        let man_b = eb != WorldExit::Clean || ob != golden.output;
        if man_a && (ea.clone(), oa.clone()) == (eb.clone(), ob.clone()) {
            // Distinct draws, identical wrong effect: the two corrupt
            // replicas genuinely outvote the clean one. Same known
            // duplicate-effect limit as identical draws.
            return Ok(());
        }
        let (winner, report) = run_replicated(
            &app.image,
            app.world_config(budget),
            &FtPolicy::default(),
            |r, w| {
                if r == 0 {
                    w.set_message_fault(fa);
                } else if r == 1 {
                    w.set_message_fault(fb);
                }
            },
            |w| app.comparable_output(w),
        );
        // The overarching invariant: a clean verdict is never wrong.
        if report.exit == WorldExit::Clean {
            prop_assert_eq!(
                app.comparable_output(&winner),
                golden.output.clone(),
                "clean exit with corrupted output: silent mask ({fa:?}, {fb:?})"
            );
        }
        if man_a && man_b {
            // Round votes can exclude at most one of three replicas;
            // the two distinct manifesting effects then tie or
            // three-way-split every later vote.
            prop_assert!(
                report.exit != WorldExit::Clean,
                "two manifesting corruptions ended clean: {report:?} ({fa:?}, {fb:?})"
            );
        } else if !man_a && !man_b && &da == clean_digests() && &db == clean_digests() {
            // Neither fault has any observable effect, on the wire or
            // off: the replicas never disagree.
            prop_assert_eq!(&report.exit, &WorldExit::Clean, "({fa:?}, {fb:?}) -> {report:?}");
            prop_assert_eq!(app.comparable_output(&winner), golden.output.clone());
            prop_assert_eq!(report.votes, 0);
        }
    }
}
