//! # fl-ft — process-level fault tolerance
//!
//! The paper's §5.1 taxonomy stops at *detecting* an error; this crate
//! models what a fault-tolerant MPI runtime does *next* when the error is
//! the loss of a whole process. Three recovery disciplines are provided,
//! all built on the fl-mpi substrate primitives (heartbeat failure
//! detection, world snapshots, outbound-traffic digests):
//!
//! - **Shrink** ([`run_shrink`]) — ULFM `MPI_Comm_shrink` style: when the
//!   detector raises [`WorldExit::RankFailed`], rebuild the world over the
//!   survivors and rerun the (now smaller) job. Communication is
//!   restored; the lost rank's state is not — the apps are weak-scaled
//!   (per-rank problem size), so the shrunken run solves the smaller
//!   problem and is checked against a fresh survivor-count golden.
//! - **Respawn** ([`run_respawn`]) — buddy checkpointing: every
//!   `buddy_rounds` scheduler rounds each rank streams its state to a
//!   ring partner ([`buddy_of`]), forming a coordinated checkpoint line.
//!   On failure a spare is booted from the failed rank's line and the
//!   whole world resumes from it, reproducing the original-size answer.
//! - **Replication** ([`run_replicated`]) — N full replicas of the world
//!   run in lockstep with per-rank rolling CRC32 digests over outbound
//!   traffic. A replica whose digests diverge from the strict majority is
//!   voted out mid-run; the final (exit, output) pair is voted the same
//!   way, so a single bad replica is masked and a no-majority split is
//!   *detected* rather than silently trusted.
//!
//! The fault these paths recover from is [`RankKill`] — a process dies
//! (or wedges: stays resident but silent) at a drawn retired-block clock,
//! the process-level analogue of the paper's bit flips.

use fl_machine::ProgramImage;
use fl_mpi::{FailureDetector, MpiWorld, WorldConfig, WorldExit, WorldSnapshot};

pub use fl_mpi::{Health, RankKill};

/// Knobs for the recovery paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtPolicy {
    /// Heartbeat detector settings. `enabled` is forced on by the
    /// runners; the probe/suspect thresholds are what matter here.
    pub detector: FailureDetector,
    /// Scheduler rounds between buddy checkpoint lines (respawn only).
    /// A line is captured only when every rank is alive — a coordinated
    /// checkpoint needs all participants to contribute their piece.
    pub buddy_rounds: u64,
    /// Respawn attempts before the failure is surfaced as fatal.
    pub max_respawns: u32,
    /// Replica count for [`run_replicated`] (clamped to at least 2).
    pub replicas: u16,
}

impl Default for FtPolicy {
    fn default() -> Self {
        FtPolicy {
            detector: FailureDetector {
                enabled: true,
                ..FailureDetector::default()
            },
            buddy_rounds: 64,
            max_respawns: 3,
            replicas: 3,
        }
    }
}

/// Which fault-tolerance discipline a run used (campaign axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// No detector, no recovery: a killed rank strands its peers.
    Baseline,
    /// Detect, then rebuild the world over the survivors.
    Shrink,
    /// Detect, then boot a spare from the buddy checkpoint line.
    Respawn,
    /// N lockstep replicas with digest/output voting.
    Replicated,
    /// ULFM mode: failures surface *inside* the application as
    /// `MPIX_ERR_PROC_FAILED` returns and fault-aware collectives; the
    /// app recovers itself (ack / agree / shrink / checkpoint rollback)
    /// with no harness intervention at all.
    App,
}

impl FtMode {
    /// Every mode, baseline first (campaign sweep order).
    pub const ALL: [FtMode; 5] = [
        FtMode::Baseline,
        FtMode::Shrink,
        FtMode::Respawn,
        FtMode::Replicated,
        FtMode::App,
    ];

    /// Display label — also the canonical parse name.
    pub fn label(self) -> &'static str {
        match self {
            FtMode::Baseline => "baseline",
            FtMode::Shrink => "shrink",
            FtMode::Respawn => "respawn",
            FtMode::Replicated => "replicated",
            FtMode::App => "app",
        }
    }
}

impl std::fmt::Display for FtMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FtMode {
    type Err = String;

    fn from_str(s: &str) -> Result<FtMode, String> {
        Ok(match s {
            "baseline" => FtMode::Baseline,
            "shrink" => FtMode::Shrink,
            "respawn" => FtMode::Respawn,
            "replicated" => FtMode::Replicated,
            "app" => FtMode::App,
            other => return Err(format!("unknown ft mode `{other}`")),
        })
    }
}

/// What a recovery run did and how it ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtReport {
    /// Final exit of the (possibly recovered) run.
    pub exit: WorldExit,
    /// Failures the heartbeat detector raised.
    pub failures_detected: u32,
    /// Worlds rebuilt over survivors.
    pub shrinks: u32,
    /// Spares booted from a buddy line.
    pub respawns: u32,
    /// Replicas voted out (digest or final-output divergence).
    pub votes: u32,
    /// Rank count of the world that produced `exit`.
    pub final_nranks: u16,
}

impl FtReport {
    fn fresh(exit: WorldExit, nranks: u16) -> FtReport {
        FtReport {
            exit,
            failures_detected: 0,
            shrinks: 0,
            respawns: 0,
            votes: 0,
            final_nranks: nranks,
        }
    }

    /// Did any recovery machinery actually engage?
    pub fn intervened(&self) -> bool {
        self.shrinks > 0 || self.respawns > 0 || self.votes > 0
    }
}

/// Ring buddy: the partner that holds `rank`'s checkpoint line and
/// receives its suspicion/probe events.
pub fn buddy_of(rank: u16, nranks: u16) -> u16 {
    (rank + 1) % nranks.max(1)
}

/// `cfg` with the policy's failure detector switched on.
///
/// Harness-owned recovery: the app-visible ulfm surface is forced *off*
/// so a matured failure terminates the world (`RankFailed`) for the
/// runner to handle — even for an app whose own config asks for ulfm.
pub fn ft_config(cfg: WorldConfig, policy: &FtPolicy) -> WorldConfig {
    let mut out = cfg;
    out.ft = FailureDetector {
        enabled: true,
        ..policy.detector
    };
    out.ulfm = false;
    out
}

/// ULFM-style shrink: a fresh world over one fewer rank.
///
/// `MPI_Comm_size` is resolved at run time in the simulated apps, so the
/// same program image runs at any rank count; the survivors restart the
/// (per-rank-scaled) problem from the beginning. Shrink restores
/// *communication*, not the lost rank's state — that is respawn's job.
/// The returned world is deterministic given `cfg`: no detector residue
/// and no carried fault, so its event stream is bit-identical to a cold
/// run at `nranks - 1` (pinned by the fl-ft property tests).
pub fn shrink(image: &ProgramImage, cfg: WorldConfig) -> MpiWorld {
    assert!(cfg.nranks >= 2, "cannot shrink a single-rank world");
    let mut scfg = cfg;
    scfg.nranks = cfg.nranks - 1;
    MpiWorld::new(image, scfg)
}

/// Run with the detector on; on [`WorldExit::RankFailed`], shrink to the
/// survivors and rerun. `arm` plants the fault (if any) in the initial
/// world.
pub fn run_shrink(
    image: &ProgramImage,
    cfg: WorldConfig,
    policy: &FtPolicy,
    arm: impl FnOnce(&mut MpiWorld),
) -> (MpiWorld, FtReport) {
    let mut world = MpiWorld::new(image, ft_config(cfg, policy));
    arm(&mut world);
    let exit = world.run();
    let mut report = FtReport::fresh(exit.clone(), world.nranks());
    if let WorldExit::RankFailed { rank, .. } = exit {
        report.failures_detected = 1;
        let mut survivor = shrink(image, ft_config(cfg, policy));
        // The shrunken world itself is pristine; the marker event is the
        // recovery runner's doing, not shrink()'s, so the survivor stream
        // minus this prefix stays comparable to a cold shrunken run.
        survivor.note_world_shrunk(rank, survivor.nranks());
        report.shrinks = 1;
        report.exit = survivor.run();
        report.final_nranks = survivor.nranks();
        return (survivor, report);
    }
    (world, report)
}

/// `cfg` with the detector on *and* app-visible ULFM mode on.
pub fn ulfm_config(cfg: WorldConfig, policy: &FtPolicy) -> WorldConfig {
    let mut out = ft_config(cfg, policy);
    out.ulfm = true;
    out
}

/// Run in app-visible ULFM mode: failures become `MPIX_ERR_PROC_FAILED`
/// completions and fault-aware collectives *inside* the program, and the
/// application is expected to recover itself (ack / agree / shrink /
/// checkpoint rollback). The harness never intervenes — the report only
/// records what the app-visible machinery did: failures surfaced and
/// worlds the *application* rebuilt via `mpix_comm_shrink`.
pub fn run_app(
    image: &ProgramImage,
    cfg: WorldConfig,
    policy: &FtPolicy,
    arm: impl FnOnce(&mut MpiWorld),
) -> (MpiWorld, FtReport) {
    let mut world = MpiWorld::new(image, ulfm_config(cfg, policy));
    arm(&mut world);
    let exit = world.run();
    let mut report = FtReport::fresh(exit, world.nranks());
    // Ranks the app shrank away, plus failures known but not (yet)
    // recovered from.
    report.failures_detected =
        (cfg.nranks - world.nranks()) as u32 + world.ulfm_failed_mask().count_ones();
    report.shrinks = world.app_shrinks();
    (world, report)
}

/// One coordinated buddy checkpoint line: the assembled per-rank pieces
/// (modelled as a world snapshot) plus the round they were cut at.
struct BuddyLine {
    snap: WorldSnapshot,
    round: u64,
}

/// Run with the detector on, cutting a buddy checkpoint line every
/// `policy.buddy_rounds`; on failure, boot a spare from the last line
/// and resume. The carried [`RankKill`] is cleared on restore — the
/// spare must not re-execute the fault — so a detected kill costs one
/// respawn and the run completes at full size.
pub fn run_respawn(
    image: &ProgramImage,
    cfg: WorldConfig,
    policy: &FtPolicy,
    arm: impl FnOnce(&mut MpiWorld),
) -> (MpiWorld, FtReport) {
    let mut world = MpiWorld::new(image, ft_config(cfg, policy));
    arm(&mut world);
    let mut line = BuddyLine {
        snap: world.snapshot(),
        round: 0,
    };
    let mut report = FtReport::fresh(WorldExit::Clean, world.nranks());
    let exit = loop {
        match world.run_round() {
            Some(WorldExit::RankFailed { rank, round }) => {
                report.failures_detected += 1;
                if report.respawns >= policy.max_respawns {
                    break WorldExit::RankFailed { rank, round };
                }
                let mut restored = line.snap.restore();
                // A pre-fire line carries the armed kill (it is Copy
                // state); the spare must not die the same death.
                let _ = restored.take_rank_kill();
                restored.note_rank_respawned(rank, line.round);
                report.respawns += 1;
                world = restored;
            }
            Some(exit) => break exit,
            None => {
                let r = world.round();
                if policy.buddy_rounds > 0
                    && r.is_multiple_of(policy.buddy_rounds)
                    && (0..world.nranks()).all(|k| matches!(world.health(k), Health::Alive))
                {
                    // A line completes only when every rank contributed
                    // its piece; a world with a dead rank in it is not a
                    // valid restart point.
                    world.note_snapshot_captured(r);
                    line = BuddyLine {
                        snap: world.snapshot(),
                        round: r,
                    };
                }
            }
        }
    };
    report.exit = exit;
    report.final_nranks = world.nranks();
    (world, report)
}

/// Per-rank outbound digests of a world (the replica comparison key).
fn digests_of(w: &MpiWorld, nranks: u16) -> Vec<u32> {
    (0..nranks).map(|r| w.out_digest(r)).collect()
}

/// Vote replica `idx` out: drop its world, count the vote, and record
/// the event on every surviving replica.
fn vote_out(worlds: &mut [Option<MpiWorld>], idx: usize, votes: &mut u32) {
    worlds[idx] = None;
    *votes += 1;
    let live = worlds.iter().filter(|w| w.is_some()).count() as u16;
    for w in worlds.iter_mut().flatten() {
        w.note_replica_vote(idx as u16, live);
    }
}

/// Run `policy.replicas` full copies of the world in lockstep and vote.
///
/// All replicas share `cfg` (same seed: identical scheduling, so a fault
/// is the *only* source of divergence). `arm` is called once per replica
/// with its index to plant per-replica faults; `output` extracts the
/// comparable output of a finished world (app-specific, hence a closure).
///
/// Two voting layers:
/// - every lockstep round, the per-rank digest vectors of the replicas
///   still running are compared; a strict-majority value wins and
///   disagreeing replicas are voted out. No strict majority ⇒ the run
///   aborts as [`WorldExit::GuardDetected`] — divergence *detected*, not
///   masked.
/// - at the end, the (exit, output) pairs of surviving replicas are
///   voted the same way, catching corruption that never touched a wire
///   message.
///
/// The returned world is the vote winner; `report.votes` counts excluded
/// replicas, so `votes > 0` with a clean matching exit means the fault
/// was *masked by replication*.
pub fn run_replicated(
    image: &ProgramImage,
    cfg: WorldConfig,
    policy: &FtPolicy,
    arm: impl Fn(u16, &mut MpiWorld),
    output: impl Fn(&MpiWorld) -> Vec<u8>,
) -> (MpiWorld, FtReport) {
    let nrep = policy.replicas.max(2) as usize;
    let mut rcfg = cfg;
    rcfg.track_digests = true;
    let mut worlds: Vec<Option<MpiWorld>> = (0..nrep)
        .map(|i| {
            let mut w = MpiWorld::new(image, rcfg);
            arm(i as u16, &mut w);
            Some(w)
        })
        .collect();
    let mut finished: Vec<Option<WorldExit>> = (0..nrep).map(|_| None).collect();
    let mut report = FtReport::fresh(WorldExit::Clean, cfg.nranks);

    loop {
        // Lockstep: one scheduler round on every live replica still
        // running. Same seed ⇒ identical rounds unless a fault diverged.
        let mut stepped = false;
        for i in 0..nrep {
            if finished[i].is_some() {
                continue;
            }
            if let Some(w) = worlds[i].as_mut() {
                stepped = true;
                if let Some(e) = w.run_round() {
                    finished[i] = Some(e);
                }
            }
        }
        if !stepped {
            break;
        }

        // Digest vote among replicas still running (a finished replica's
        // digest is final and no longer comparable round-for-round; it
        // faces the exit/output vote instead).
        let running: Vec<usize> = (0..nrep)
            .filter(|&i| worlds[i].is_some() && finished[i].is_none())
            .collect();
        if running.len() >= 2 {
            let digs: Vec<Vec<u32>> = running
                .iter()
                .map(|&i| digests_of(worlds[i].as_ref().unwrap(), cfg.nranks))
                .collect();
            if digs.iter().any(|d| d != &digs[0]) {
                let majority = digs
                    .iter()
                    .find(|a| digs.iter().filter(|b| b == a).count() * 2 > digs.len())
                    .cloned();
                match majority {
                    Some(maj) => {
                        for (k, &i) in running.iter().enumerate() {
                            if digs[k] != maj {
                                vote_out(&mut worlds, i, &mut report.votes);
                            }
                        }
                    }
                    None => {
                        report.exit = WorldExit::GuardDetected {
                            rank: 0,
                            what: format!(
                                "replica vote: no digest majority among {} replicas",
                                digs.len()
                            ),
                        };
                        let first = running[0];
                        return (worlds[first].take().unwrap(), report);
                    }
                }
            }
        }
    }

    // Final vote on (exit, output) among surviving replicas.
    let live: Vec<usize> = (0..nrep).filter(|&i| worlds[i].is_some()).collect();
    let keys: Vec<(WorldExit, Vec<u8>)> = live
        .iter()
        .map(|&i| {
            (
                finished[i].clone().expect("live replica finished"),
                output(worlds[i].as_ref().unwrap()),
            )
        })
        .collect();
    let mut winner = 0usize;
    let mut winner_count = 0usize;
    for (a, ka) in keys.iter().enumerate() {
        let c = keys.iter().filter(|kb| *kb == ka).count();
        if c > winner_count {
            winner = a;
            winner_count = c;
        }
    }
    if winner_count * 2 <= live.len() {
        report.exit = WorldExit::GuardDetected {
            rank: 0,
            what: format!(
                "replica vote: no exit/output majority among {} replicas",
                live.len()
            ),
        };
        let first = live[0];
        return (worlds[first].take().unwrap(), report);
    }
    let winning_key = keys[winner].clone();
    for (a, ka) in keys.iter().enumerate() {
        if *ka != winning_key {
            vote_out(&mut worlds, live[a], &mut report.votes);
        }
    }
    report.exit = winning_key.0;
    (worlds[live[winner]].take().unwrap(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{App, AppKind, AppParams};
    use fl_mpi::MessageFault;

    const BUDGET: u64 = 2_000_000_000;

    fn tiny(kind: AppKind) -> App {
        App::build(kind, AppParams::tiny(kind))
    }

    #[test]
    fn shrink_recovers_to_survivor_golden() {
        let app = tiny(AppKind::Wavetoy);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let cfg = app.world_config(budget);
        let kill = RankKill {
            rank: 1,
            at_blocks: golden.blocks[1] / 2,
            wedge: false,
        };
        let (survivor, report) = run_shrink(&app.image, cfg, &FtPolicy::default(), |w| {
            w.set_rank_kill(kill)
        });
        assert_eq!(report.exit, WorldExit::Clean);
        assert_eq!(report.failures_detected, 1);
        assert_eq!(report.shrinks, 1);
        assert_eq!(report.final_nranks, cfg.nranks - 1);
        // The survivors solve the (n-1)-rank problem: compare against a
        // cold golden at the shrunken size.
        let mut scfg = cfg;
        scfg.nranks = cfg.nranks - 1;
        let mut cold = MpiWorld::new(&app.image, scfg);
        assert_eq!(cold.run(), WorldExit::Clean);
        assert_eq!(
            app.comparable_output(&survivor),
            app.comparable_output(&cold)
        );
    }

    #[test]
    fn respawn_recovers_original_answer() {
        let app = tiny(AppKind::Wavetoy);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let cfg = app.world_config(budget);
        for wedge in [false, true] {
            let kill = RankKill {
                rank: 2,
                at_blocks: golden.blocks[2] / 2,
                wedge,
            };
            let (world, report) = run_respawn(&app.image, cfg, &FtPolicy::default(), |w| {
                w.set_rank_kill(kill)
            });
            assert_eq!(report.exit, WorldExit::Clean, "wedge={wedge}");
            assert_eq!(report.failures_detected, 1);
            assert_eq!(report.respawns, 1);
            assert_eq!(report.final_nranks, cfg.nranks);
            assert_eq!(
                app.comparable_output(&world),
                golden.output,
                "respawned run must reproduce the original-size answer (wedge={wedge})"
            );
        }
    }

    #[test]
    fn baseline_kill_without_detector_hangs() {
        let app = tiny(AppKind::Wavetoy);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let cfg = app.world_config(budget);
        let mut world = MpiWorld::new(&app.image, cfg);
        world.set_rank_kill(RankKill {
            rank: 0,
            at_blocks: golden.blocks[0] / 2,
            wedge: false,
        });
        assert!(
            matches!(world.run(), WorldExit::Hung { .. }),
            "without the detector a killed rank strands its peers"
        );
    }

    #[test]
    fn replication_masks_single_corrupt_replica() {
        let app = tiny(AppKind::Wavetoy);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let cfg = app.world_config(budget);
        // Find a message fault that actually manifests in a solo run
        // (not every flipped bit survives to the output), then check the
        // replica set masks exactly that fault.
        let fault = (1..12u64)
            .map(|k| MessageFault {
                rank: 1,
                at_recv_byte: golden.recv_bytes[1] * k / 12,
                bit: (k % 8) as u8,
            })
            .find(|&f| {
                let mut solo = MpiWorld::new(&app.image, cfg);
                solo.set_message_fault(f);
                let exit = solo.run();
                exit != WorldExit::Clean || app.comparable_output(&solo) != golden.output
            })
            .expect("some payload flip must manifest");
        let (winner, report) = run_replicated(
            &app.image,
            cfg,
            &FtPolicy::default(),
            |replica, w| {
                if replica == 0 {
                    w.set_message_fault(fault);
                }
            },
            |w| app.comparable_output(w),
        );
        assert_eq!(report.exit, WorldExit::Clean);
        assert!(
            report.votes >= 1,
            "the corrupt replica must be voted out, got {report:?}"
        );
        assert_eq!(app.comparable_output(&winner), golden.output);
    }

    #[test]
    fn replication_clean_run_votes_nobody_out() {
        let app = tiny(AppKind::Climsim);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let cfg = app.world_config(budget);
        let (winner, report) = run_replicated(
            &app.image,
            cfg,
            &FtPolicy::default(),
            |_, _| {},
            |w| app.comparable_output(w),
        );
        assert_eq!(report.exit, WorldExit::Clean);
        assert_eq!(report.votes, 0);
        assert_eq!(app.comparable_output(&winner), golden.output);
    }

    #[test]
    fn ft_mode_labels_roundtrip() {
        for mode in FtMode::ALL {
            assert_eq!(mode.label().parse::<FtMode>(), Ok(mode));
        }
        assert!("nope".parse::<FtMode>().is_err());
    }

    #[test]
    fn buddy_ring_wraps() {
        assert_eq!(buddy_of(0, 3), 1);
        assert_eq!(buddy_of(2, 3), 0);
    }
}
