//! Fault-semantics integration tests: specific injected faults must
//! produce the specific failure modes the paper attributes to them.

use fl_apps::{App, AppKind, AppParams};
use fl_isa::{FpuSpecial, Gpr, RegisterName};
use fl_lang::compile;
use fl_machine::{Exit, Machine, MachineConfig, Signal};
use fl_mpi::{MpiWorld, PendingInjection, WorldConfig, WorldExit};

fn single_machine(src: &str) -> Machine {
    Machine::load(
        &compile(src).unwrap(),
        MachineConfig {
            budget: 50_000_000,
            ..Default::default()
        },
    )
}

#[test]
fn esp_high_bit_flip_crashes() {
    // A flipped stack pointer lands outside the stack mapping: SIGSEGV on
    // the next push — the dominant register-fault outcome.
    let mut m = single_machine(
        "fn f(int x) -> int { if (x > 0) { return f(x - 1) + 1; } return 0; }
         fn main() { print_int(f(50)); }",
    );
    for _ in 0..100 {
        assert!(m.step().is_none());
    }
    m.flip_register_bit(RegisterName::Gpr(Gpr::Esp), 27);
    assert!(matches!(
        m.run(1_000_000),
        Exit::Signal(Signal::Segv { .. })
    ));
}

#[test]
fn eip_flip_crashes_or_wanders() {
    let mut m = single_machine("fn main() { var int i; for (i = 0; i < 1000; i = i + 1) { } }");
    for _ in 0..50 {
        assert!(m.step().is_none());
    }
    m.flip_register_bit(RegisterName::Eip, 29);
    // Out of any mapping: SIGSEGV at fetch.
    assert!(matches!(
        m.run(1_000_000),
        Exit::Signal(Signal::Segv { .. })
    ));
}

#[test]
fn loop_counter_flip_can_hang() {
    // Flip a high bit of the loop counter right as the loop runs: the
    // bound check `i < 1000` sees a huge negative/positive value. With a
    // negative value the loop runs ~2^31 iterations: budget exhaustion.
    let src = "fn main() { var int i; for (i = 0; i < 1000; i = i + 1) { } }";
    let mut hangs = 0;
    for warm in [200u64, 400, 800] {
        let mut m = single_machine(src);
        for _ in 0..warm {
            if m.step().is_some() {
                break;
            }
        }
        // The loop variable lives in the frame at EBP-4 (little-endian);
        // its sign bit is bit 7 of the byte at EBP-1.
        let ebp = m.cpu.get(Gpr::Ebp);
        m.flip_mem_bit(ebp.wrapping_sub(1), 7);
        if matches!(m.run(u64::MAX), Exit::Budget) {
            hangs += 1;
        }
    }
    assert!(hangs > 0, "no loop-counter flip hung");
}

#[test]
fn twd_flip_produces_nan_results() {
    // §6.1.1: "Changing one bit [of TWD] can turn a valid number into NaN
    // or zero." Flip a tag while a live float sits on the FPU stack.
    let src = "fn main() {
                   var float a;
                   a = 1.5;
                   a = a * 2.0 + 1.0;
                   print_flt(a, 3);
               }";
    let img = compile(src).unwrap();
    // Find a step at which the FPU stack is non-empty, then corrupt TWD.
    let mut nan_seen = false;
    for steps in 1..200 {
        let mut m = Machine::load(&img, MachineConfig::default());
        let mut alive = true;
        for _ in 0..steps {
            if m.step().is_some() {
                alive = false;
                break;
            }
        }
        if !alive || m.cpu.fpu.depth() == 0 {
            continue;
        }
        // Flip both bits of st0's tag (valid 00 -> empty 11).
        let p = m.cpu.fpu.phys(0) as u32;
        m.flip_register_bit(RegisterName::FpuSpecial(FpuSpecial::Twd), 2 * p);
        m.flip_register_bit(RegisterName::FpuSpecial(FpuSpecial::Twd), 2 * p + 1);
        if let Exit::Halted(_) = m.run(1_000_000) {
            if m.console_text().contains("NaN") {
                nan_seen = true;
                break;
            }
        }
    }
    assert!(nan_seen, "no TWD flip produced a NaN in the output");
}

#[test]
fn fpu_pointer_registers_are_inert() {
    // §6.1.1: "most special-purpose register injections did not induce
    // errors" — FIP/FCS/FOO/FOS are written, never read.
    let src = "fn main() {
                   var float a;
                   var int i;
                   a = 0.0;
                   for (i = 0; i < 50; i = i + 1) { a = a + sqrt(float(i)); }
                   print_flt(a, 6);
               }";
    let img = compile(src).unwrap();
    let mut clean = Machine::load(&img, MachineConfig::default());
    assert!(matches!(clean.run(10_000_000), Exit::Halted(0)));
    let golden = clean.console_text();
    for special in [
        FpuSpecial::Fip,
        FpuSpecial::Fcs,
        FpuSpecial::Foo,
        FpuSpecial::Fos,
    ] {
        for bit in [0u32, 7, 13] {
            let mut m = Machine::load(&img, MachineConfig::default());
            for _ in 0..300 {
                assert!(m.step().is_none());
            }
            m.flip_register_bit(RegisterName::FpuSpecial(special), bit);
            assert!(
                matches!(m.run(10_000_000), Exit::Halted(0)),
                "{special:?} bit {bit}"
            );
            assert_eq!(
                m.console_text(),
                golden,
                "{special:?} bit {bit} changed output"
            );
        }
    }
}

#[test]
fn cold_text_faults_do_not_manifest() {
    // A bit flip in a never-executed function changes nothing — the
    // §6.1.2 explanation for low text error rates.
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    // Find a cold function's symbol.
    let cold = app
        .image
        .symbols
        .iter()
        .find(|s| s.name.starts_with("wt_cold_"))
        .expect("cold symbols exist");
    let addr = cold.addr + cold.size / 2;
    let mut w = app.world(2_000_000_000);
    w.set_injection(PendingInjection {
        rank: 0,
        at_insns: 1000,
        action: Box::new(move |m| m.flip_mem_bit(addr, 3)),
        period: None,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(app.comparable_output(&w), golden.output);
}

#[test]
fn hot_text_faults_usually_manifest() {
    // Corrupt the opcode byte of an instruction inside the stepping
    // kernel: with odd-valued opcodes, flipping bit 0 guarantees an
    // illegal instruction once that code executes again.
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let step_fn = app
        .image
        .symbols
        .iter()
        .find(|s| s.name == "step_field")
        .expect("step_field symbol");
    let addr = step_fn.addr + 16; // early instruction of the kernel
    let mut w = app.world(2_000_000_000);
    w.set_injection(PendingInjection {
        rank: 1,
        at_insns: 1000,
        action: Box::new(move |m| m.flip_mem_bit(addr, 0)),
        period: None,
    });
    let exit = w.run();
    assert!(
        matches!(&exit, WorldExit::Crashed { reason, .. } if reason.contains("SIGILL")),
        "{exit:?}"
    );
}

#[test]
fn stack_return_address_corruption_crashes() {
    // Corrupt a return address on the stack at an MPI trap: the RET jumps
    // into the weeds.
    let src = "fn leaf() -> int { return mpi_rank(); }
               fn mid() -> int { return leaf() + 1; }
               fn main() { mpi_init(); print_int(mid()); mpi_finalize(); }";
    let img = compile(src).unwrap();
    let mut w = MpiWorld::new(
        &img,
        WorldConfig {
            nranks: 1,
            machine: MachineConfig {
                budget: 10_000_000,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    w.set_injection(PendingInjection {
        rank: 0,
        at_insns: 20,
        action: Box::new(|m| {
            let frames = fl_machine::walk(m);
            let f = frames.iter().find(|f| f.app_context).expect("app frame");
            // Flip a high bit of the stored return address.
            m.flip_mem_bit(f.ebp + 4 + 3, 6); // byte 3, bit 6 => bit 30
        }),
        period: None,
    });
    let exit = w.run();
    assert!(matches!(exit, WorldExit::Crashed { .. }), "{exit:?}");
}

#[test]
fn heap_user_chunk_corruption_flows_into_output() {
    // Flip a high mantissa bit of a grid cell on the heap mid-run: the
    // PDE propagates it into the final text output (Incorrect), or the
    // value dies before output (Correct) — never a detection, since
    // wavetoy has no checks.
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    // Most of the heap is the cold grid-hierarchy reserve, so many draws
    // are needed before one lands in a live grid plane.
    let mut incorrect = 0;
    for k in 0..48u64 {
        let mut w = app.world(2_000_000_000);
        w.set_injection(PendingInjection {
            rank: 0,
            at_insns: golden.insns[0] / 2,
            action: Box::new(move |m| {
                if let Some(addr) = fl_inject::resolve_heap_target(m, k * 7919 + 13, 1) {
                    m.flip_mem_bit(addr, 6);
                }
            }),
            period: None,
        });
        let exit = w.run();
        let out = app.comparable_output(&w);
        match fl_inject::classify(&exit, &out, &golden.output) {
            fl_inject::Manifestation::Incorrect => incorrect += 1,
            fl_inject::Manifestation::Correct => {}
            fl_inject::Manifestation::Crash | fl_inject::Manifestation::Hang => {}
            other => panic!("wavetoy cannot detect: {other}"),
        }
    }
    assert!(incorrect > 0, "no heap fault reached the output");
}
