//! End-to-end integration: source generation → compilation → simulated
//! cluster → fault injection → classification, across every crate.

use fl_apps::{App, AppKind, AppParams, AppVariant};
use fl_inject::{CampaignBuilder, Manifestation, TargetClass};
use fl_mpi::WorldExit;

#[test]
fn every_app_full_pipeline() {
    for kind in AppKind::ALL {
        let app = App::build(kind, AppParams::tiny(kind));
        // Symbol table covers both worlds.
        assert!(app.image.symbols.iter().any(|s| s.library));
        assert!(app.image.symbols.iter().any(|s| !s.library));
        // Golden run.
        let golden = app.golden(2_000_000_000);
        assert!(!golden.output.is_empty(), "{}", kind.name());
        // One injection in every class completes and classifies.
        let result = CampaignBuilder::new(&app)
            .classes(&TargetClass::ALL)
            .injections(3)
            .seed(99)
            .run();
        assert_eq!(result.classes.len(), 8);
        for c in &result.classes {
            assert_eq!(c.tally.executions, 3, "{}: {:?}", kind.name(), c.class);
        }
    }
}

#[test]
fn golden_runs_are_reproducible_across_worlds() {
    for kind in AppKind::ALL {
        let app = App::build(kind, AppParams::tiny(kind));
        let a = app.golden(2_000_000_000);
        let b = app.golden(2_000_000_000);
        assert_eq!(a.output, b.output, "{}", kind.name());
        assert_eq!(a.insns, b.insns, "{}", kind.name());
        assert_eq!(a.recv_bytes, b.recv_bytes, "{}", kind.name());
    }
}

#[test]
fn variants_build_and_run_clean() {
    let w = App::build_variant(
        AppKind::Wavetoy,
        AppParams::tiny(AppKind::Wavetoy),
        AppVariant::BinaryOutput,
    );
    let g = w.golden(2_000_000_000);
    // Binary output: raw f64 records.
    assert_eq!(g.output.len() % 8, 0);
    assert!(!g.output.is_empty());

    let m = App::build_variant(
        AppKind::Moldyn,
        AppParams::tiny(AppKind::Moldyn),
        AppVariant::NoChecksums,
    );
    let g = m.golden(2_000_000_000);
    assert!(!g.output.is_empty());
}

#[test]
fn checksum_variant_costs_more_instructions() {
    let params = AppParams::tiny(AppKind::Moldyn);
    let with = App::build(AppKind::Moldyn, params).golden(2_000_000_000);
    let without =
        App::build_variant(AppKind::Moldyn, params, AppVariant::NoChecksums).golden(2_000_000_000);
    let i_with: u64 = with.insns.iter().sum();
    let i_without: u64 = without.insns.iter().sum();
    assert!(
        i_with > i_without,
        "checksums must cost instructions: {i_with} vs {i_without}"
    );
    // And the overhead must be modest (the paper measured ~3%).
    let overhead = (i_with - i_without) as f64 / i_without as f64;
    assert!(
        overhead < 0.25,
        "overhead {:.1}% is implausibly high",
        overhead * 100.0
    );
}

#[test]
fn injected_hang_is_caught_by_budget() {
    // Corrupt a loop counter via EIP-adjacent register to provoke hangs;
    // a guaranteed-hang construction: flip the tag byte of a message.
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let mut w = app.world(budget);
    w.set_message_fault(fl_mpi::MessageFault {
        rank: 1,
        at_recv_byte: 12,
        bit: 7,
    });
    let exit = w.run();
    assert!(matches!(exit, WorldExit::Hung { .. }), "{exit:?}");
    let outcome = fl_inject::classify(&exit, &app.comparable_output(&w), &golden.output);
    assert_eq!(outcome, Manifestation::Hang);
}

#[test]
fn trace_and_campaign_share_one_app() {
    let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
    let report = fl_trace::trace_app(&app, 2_000_000_000, 20);
    assert!(report.text.at_start() > 0.0);
    let result = CampaignBuilder::new(&app)
        .classes(&[TargetClass::Text])
        .injections(5)
        .seed(1)
        .run();
    assert_eq!(result.classes[0].tally.executions, 5);
    // The small text working set explains the (mostly) correct outcomes:
    // at least some text faults must land in cold code and do nothing.
    // (5 trials is not a statistical claim; just sanity.)
    let correct = result.classes[0].tally.count(Manifestation::Correct);
    assert!(
        correct > 0,
        "all five text faults manifested, which is wildly unlikely"
    );
}
