//! Statistical-shape integration tests: with moderate sample sizes, the
//! qualitative results of the paper's Tables 2–4 and §6 analysis must
//! hold. These are the repository's "does the reproduction reproduce"
//! tests; EXPERIMENTS.md records the quantitative comparison.

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{CampaignBuilder, CampaignResult, Manifestation, TargetClass};

fn campaign(kind: AppKind, classes: &[TargetClass], n: u32) -> CampaignResult {
    let app = App::build(kind, AppParams::tiny(kind));
    CampaignBuilder::new(&app)
        .classes(classes)
        .injections(n)
        .seed(0x5AFE)
        .run()
}

#[test]
fn registers_dominate_memory_regions() {
    // §6.1.1 + §6.1.2: regular registers 38-63%; memory regions mostly
    // under ~15%.
    let r = campaign(
        AppKind::Wavetoy,
        &[
            TargetClass::RegularReg,
            TargetClass::Data,
            TargetClass::Bss,
            TargetClass::Heap,
        ],
        70,
    );
    let reg = r
        .class(TargetClass::RegularReg)
        .unwrap()
        .tally
        .error_rate_percent();
    for mem in [TargetClass::Data, TargetClass::Bss, TargetClass::Heap] {
        let m = r.class(mem).unwrap().tally.error_rate_percent();
        assert!(
            reg > m,
            "{mem:?} rate {m:.1}% must be below register rate {reg:.1}%"
        );
    }
    assert!(
        reg >= 25.0,
        "register rate {reg:.1}% below the paper's band"
    );
}

#[test]
fn fp_registers_are_least_sensitive_register_class() {
    // §6.1.1: FP register error rate 4-8% vs 38-63% for integer regs.
    let r = campaign(
        AppKind::Moldyn,
        &[TargetClass::RegularReg, TargetClass::FpReg],
        70,
    );
    let reg = r
        .class(TargetClass::RegularReg)
        .unwrap()
        .tally
        .error_rate_percent();
    let fp = r
        .class(TargetClass::FpReg)
        .unwrap()
        .tally
        .error_rate_percent();
    assert!(fp < reg / 2.0, "FP {fp:.1}% vs regular {reg:.1}%");
}

#[test]
fn moldyn_detects_message_faults_wavetoy_does_not() {
    // §6.2: NAMD detects 46% of manifest message errors via checksums;
    // Wavetoy (no checks) detects none.
    let m = campaign(AppKind::Moldyn, &[TargetClass::Message], 80);
    let w = campaign(AppKind::Wavetoy, &[TargetClass::Message], 80);
    let m_tally = &m.class(TargetClass::Message).unwrap().tally;
    let w_tally = &w.class(TargetClass::Message).unwrap().tally;
    assert!(
        m_tally.count(Manifestation::AppDetected) > 0,
        "moldyn checksums never fired"
    );
    assert_eq!(
        w_tally.count(Manifestation::AppDetected),
        0,
        "wavetoy has no checks to fire"
    );
    assert_eq!(
        w_tally.count(Manifestation::MpiDetected),
        0,
        "wavetoy registers no handler"
    );
}

#[test]
fn wavetoy_message_rate_is_lowest() {
    // Table 2 vs 3/4: Cactus 3.1% message error rate vs NAMD 38% and
    // CAM 24.2% — data payloads of near-zero floats plus text output
    // mask most payload flips.
    let w = campaign(AppKind::Wavetoy, &[TargetClass::Message], 80)
        .class(TargetClass::Message)
        .unwrap()
        .tally
        .error_rate_percent();
    let m = campaign(AppKind::Moldyn, &[TargetClass::Message], 80)
        .class(TargetClass::Message)
        .unwrap()
        .tally
        .error_rate_percent();
    assert!(
        w < m,
        "wavetoy message rate {w:.1}% must be below moldyn's {m:.1}%"
    );
}

#[test]
fn only_checked_apps_report_detections() {
    // Table 2 has no App/MPI-Detected columns at all; Tables 3 and 4 do.
    let w = campaign(
        AppKind::Wavetoy,
        &[TargetClass::Stack, TargetClass::Heap, TargetClass::Message],
        50,
    );
    for c in &w.classes {
        assert_eq!(
            c.tally.count(Manifestation::MpiDetected),
            0,
            "{:?}",
            c.class
        );
        assert_eq!(
            c.tally.count(Manifestation::AppDetected),
            0,
            "{:?}",
            c.class
        );
    }
}

#[test]
fn crashes_dominate_manifested_memory_faults() {
    // Tables 3-4: the Crash column dominates for memory regions on the
    // checked apps (62-95% of manifestations).
    let r = campaign(AppKind::Climsim, &[TargetClass::RegularReg], 70);
    let t = &r.class(TargetClass::RegularReg).unwrap().tally;
    let crash_share = t.manifestation_percent(Manifestation::Crash);
    assert!(
        crash_share >= 40.0,
        "crash share of register manifestations {crash_share:.1}% too low"
    );
}

#[test]
fn error_rates_roughly_independent_of_section_size() {
    // §6.1.2: "the error rate is largely independent of memory region
    // size" — climsim's data section is ~30x wavetoy's, yet both rates
    // stay in the same low band.
    let w = campaign(AppKind::Wavetoy, &[TargetClass::Data], 70)
        .class(TargetClass::Data)
        .unwrap()
        .tally
        .error_rate_percent();
    let c = campaign(AppKind::Climsim, &[TargetClass::Data], 70)
        .class(TargetClass::Data)
        .unwrap()
        .tally
        .error_rate_percent();
    assert!(
        w <= 40.0 && c <= 40.0,
        "data-region rates must stay low: {w:.1}% / {c:.1}%"
    );
}
