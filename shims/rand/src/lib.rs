//! Offline stand-in for the `rand` crate (API subset).
//!
//! Provides `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, the `Rng` extension trait with `gen`
//! and `gen_range`, and `seq::SliceRandom`. Deterministic and `Clone`
//! so RNG state can participate in world snapshots.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling support for the primitive types the workspace uses.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Multiply-shift bounded draw: uniform in `0..span` without modulo bias
/// worth caring about for simulation workloads.
#[inline]
pub(crate) fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Range argument forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range called with empty range");
        (self.start, self.end)
    }
}

/// Types producible by `Rng::gen` (full-width uniform draws).
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample_uniform(self, lo, hi)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_cloneable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let s: i32 = r.gen_range(-50..-40);
            assert!((-50..-40).contains(&s));
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
