//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Measurement is a plain adaptive wall-clock loop: run one discarded
//! warm-up sample, then grow the iteration count until a sample takes
//! long enough to time reliably, and report the **median** of a few
//! samples. The warm-up pass absorbs first-touch costs (cold caches,
//! lazily materialized pages, frequency ramp-up) and the median resists
//! scheduler outliers in both directions, which min-of-N does not —
//! min-of-N made the committed BENCH_*.json overhead fractions noisy
//! enough to go negative. No statistics beyond that, no HTML reports —
//! just `name  time: ...` lines, which is all the workspace's benches
//! need. Honours a substring filter argument the way
//! `cargo bench -- <filter>` does.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    filter: Option<String>,
    /// ns/iter of the most recent measurement, for callers that want to
    /// post-process results (not part of upstream criterion's API).
    pub last_ns_per_iter: Option<f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional (non-flag) argument is a name filter; flags
        // that `cargo bench` forwards (`--bench`, etc.) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            last_ns_per_iter: None,
        }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.as_ref(), None, 10, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.as_ref().to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.enabled(name) {
            return;
        }
        let sample = |f: &mut F| {
            let mut b = Bencher {
                ns_per_iter: None,
                budget: Duration::from_millis(60),
            };
            f(&mut b);
            b.ns_per_iter
        };
        // One full discarded warm-up sample, then the timed samples.
        sample(&mut f);
        let mut times: Vec<f64> = (0..samples.clamp(3, 20))
            .filter_map(|_| sample(&mut f))
            .collect();
        if let Some(mid) = median(&mut times) {
            self.last_ns_per_iter = Some(mid);
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.3} Melem/s", n as f64 / mid * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / mid * 1e9 / (1 << 20) as f64
                    )
                }
                None => String::new(),
            };
            println!("{name:<40} time: {}{rate}", fmt_ns(mid));
        }
    }
}

/// Median of a sample set (sorts in place); `None` when empty.
fn median(times: &mut [f64]) -> Option<f64> {
    if times.is_empty() {
        return None;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = times.len();
    Some(if n % 2 == 1 {
        times[n / 2]
    } else {
        (times[n / 2 - 1] + times[n / 2]) / 2.0
    })
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        let t = self.throughput;
        let s = self.sample_size;
        self.c.run_one(&full, t, s, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    ns_per_iter: Option<f64>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up.
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 20 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 20 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive_and_outlier_resistant() {
        assert_eq!(median(&mut []), None);
        assert_eq!(median(&mut [5.0]), Some(5.0));
        assert_eq!(median(&mut [9.0, 1.0, 5.0]), Some(5.0));
        assert_eq!(median(&mut [4.0, 2.0, 8.0, 6.0]), Some(5.0));
        // A single wild outlier must not move the reported time.
        assert_eq!(median(&mut [5.0, 5.0, 5.0, 5.0, 1e12]), Some(5.0));
    }

    #[test]
    fn measures_something() {
        let mut b = Bencher {
            ns_per_iter: None,
            budget: Duration::from_millis(1),
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.ns_per_iter.unwrap() > 0.0);
    }
}
