//! Offline stand-in for `parking_lot` (API subset): non-poisoning
//! `Mutex` / `RwLock` wrappers over `std::sync`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
