//! Offline stand-in for the `crossbeam` crate (API subset): scoped
//! threads, implemented over `std::thread::scope` (stable since 1.63).

pub mod thread {
    use std::thread as stdthread;

    /// Placeholder passed to spawned closures in place of crossbeam's
    /// nested-spawn handle. The workspace always ignores it (`|_| ...`);
    /// nested spawning is not supported by this shim.
    pub struct NestedScope {
        _private: (),
    }

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope { _private: () })),
            }
        }
    }

    /// Run `f` with a scope handle; all threads spawned through it are
    /// joined before `scope` returns. Unlike crossbeam, a panicking
    /// child propagates its panic at join time (inside the scope) rather
    /// than surfacing through the returned `Result`, which is only `Err`
    /// if `f` itself panics — the workspace treats any panic as fatal,
    /// so the distinction is immaterial here.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU32, Ordering};

        #[test]
        fn scoped_threads_share_borrows() {
            let counter = AtomicU32::new(0);
            let total = super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
                7
            })
            .expect("scope");
            assert_eq!(total, 7);
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }
    }
}
