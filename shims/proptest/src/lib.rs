//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Strategies generate values from a deterministic per-test RNG (the
//! seed is derived from the test's module path and name plus the case
//! index), so runs are reproducible across machines. There is no
//! shrinking: a failing case panics with the case index so it can be
//! re-run under a debugger by filtering to the same test.

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
