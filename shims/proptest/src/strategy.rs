//! Strategy combinators: ranges, tuples, `Just`, `prop_map`,
//! `prop_recursive`, unions (`prop_oneof!`) and boxing.

use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies. `depth` bounds the recursion; the desired
    /// size / branch hints are accepted for API compatibility but not
    /// used by this shim.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            grow: Rc::new(move |inner| f(inner).boxed()),
        }
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ------------------------------------------------------------ combinators

/// Constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

type Grow<V> = dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>;

pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    grow: Rc<Grow<V>>,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.grow)(s);
        }
        s.generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
