//! `any::<T>()` for primitive types: full-width uniform draws.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of finite values across magnitudes and the occasional
        // special, mirroring proptest's bias toward edge cases.
        match rng.below(8) {
            0 => 0.0,
            1 => f64::from_bits(rng.next_u64()), // may be NaN/Inf/subnormal
            _ => {
                let m = rng.f64_in(-1.0, 1.0);
                let e = rng.below(64) as i32 - 32;
                m * (2f64).powi(e)
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
