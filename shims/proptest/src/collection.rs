//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    elem: S,
    lo: usize,
    hi: usize,
}

/// Length bounds accepted by `vec` (a plain length or a half-open range).
pub trait SizeRange {
    fn bounds(self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end)
    }
}

pub fn vec<S: Strategy>(elem: S, len: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    VecStrategy { elem, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
