//! The `proptest!` test-definition macro and the `prop_assert*` family.

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn my_test(x in 0u32..10, v in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __body()
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}
