//! Test configuration, the per-case RNG, and the case-driving loop used
//! by the `proptest!` macro expansion.

use rand::{Rng, RngCore, SeedableRng, StdRng};

/// Subset of proptest's config: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case. Carries just a message.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `0..span` (`span > 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        self.inner.gen_range(0..span)
    }

    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    #[inline]
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo) as u64) as i128
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Drive `cases` runs of `body`, panicking (with the case index and the
/// failure message) on the first `Err`.
pub fn run_proptest<F>(cfg: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    for case in 0..cfg.cases {
        let mut rng =
            TestRng::from_seed(base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        if let Err(e) = body(&mut rng) {
            panic!("proptest {name}: case {case}/{} failed: {e}", cfg.cases);
        }
    }
}
