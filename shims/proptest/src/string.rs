//! String strategies from a small regex subset, enough for the patterns
//! the workspace uses: `\PC` (any non-control char), bracketed char
//! classes with ranges and `\`-escapes, literal chars, and a postfix
//! `*` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Item {
    /// Any printable (non-control) char: `\PC`.
    Printable,
    /// One of an explicit set: `[...]`.
    OneOf(Vec<char>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    item: Item,
    starred: bool,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let mut pieces: Vec<Piece> = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let item = match c {
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // Unicode class escape; we only support \PC / \pC.
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "unsupported class in pattern {pat:?}");
                    Item::Printable
                }
                Some(esc) => Item::Literal(esc),
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            '[' => {
                let mut set: Vec<char> = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => set.push(chars.next().expect("escape in class")),
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                // Possible range `lo-hi`; a trailing `-`
                                // before `]` is a literal dash.
                                let mut clone = chars.clone();
                                clone.next();
                                match clone.peek() {
                                    Some(&']') | None => set.push(lo),
                                    Some(&hi) => {
                                        chars.next();
                                        chars.next();
                                        set.extend((lo..=hi).filter(|c| !c.is_control()));
                                    }
                                }
                            } else {
                                set.push(lo);
                            }
                        }
                        None => panic!("unterminated class in pattern {pat:?}"),
                    }
                }
                Item::OneOf(set)
            }
            '*' => {
                let last = pieces.last_mut().expect("dangling * in pattern");
                last.starred = true;
                continue;
            }
            lit => Item::Literal(lit),
        };
        pieces.push(Piece {
            item,
            starred: false,
        });
    }
    pieces
}

fn gen_char(item: &Item, rng: &mut TestRng) -> char {
    match item {
        Item::Printable => {
            if rng.below(10) == 0 {
                // Occasional non-ASCII printable.
                const POOL: &[char] = &['é', 'λ', '☂', '嗨', 'ß', '→'];
                POOL[rng.below(POOL.len() as u64) as usize]
            } else {
                (0x20u8 + rng.below(0x5F) as u8) as char
            }
        }
        Item::OneOf(set) => set[rng.below(set.len() as u64) as usize],
        Item::Literal(c) => *c,
    }
}

/// `&'static str` regex patterns act as `String` strategies, as in
/// upstream proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = if piece.starred { rng.below(33) } else { 1 };
            for _ in 0..count {
                out.push(gen_char(&piece.item, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_star_stays_printable() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..64 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn class_respects_membership() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..64 {
            let s = "[a-z0-9 (){};=+*<>!,._\\-\"\\[\\]]*".generate(&mut rng);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || " (){};=+*<>!,._-\"[]".contains(c),
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
    }
}
