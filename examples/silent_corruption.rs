//! Silent data corruption and output-format masking (§6.2 of the paper).
//!
//! The paper found that Cactus Wavetoy's *plain-text* output (limited
//! decimal precision) hides small payload perturbations that a *binary*
//! output format would expose: "A binary output format would detect more
//! cases of incorrect output."
//!
//! This example injects the same low-order message-payload bit flip into
//! a wavetoy run and shows (a) the run completes with no error indication
//! — the most dangerous outcome class — and (b) whether the text output
//! even changes, versus the in-memory field values, which do.
//!
//! ```sh
//! cargo run --release --example silent_corruption
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_mpi::{MessageFault, WorldExit};

fn main() {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);

    // Target a halo-exchange payload on rank 1. Headers are 48 bytes, so
    // aim well inside a payload region of the byte stream.
    let volume = golden.recv_bytes[1];
    println!("rank 1 receives {volume} bytes over the run");

    let mut masked = 0;
    let mut visible = 0;
    let mut not_clean = 0;
    let trials = 40;
    for k in 0..trials {
        let offset = volume * (k + 1) / (trials + 1);
        // Low-order mantissa bit of whatever f64 the offset lands in:
        // the paper's "faults in low order decimal digits" case.
        let mut w = app.world(2_000_000_000);
        w.set_message_fault(MessageFault {
            rank: 1,
            at_recv_byte: offset,
            bit: 1,
        });
        match w.run() {
            WorldExit::Clean => {
                if app.comparable_output(&w) == golden.output {
                    masked += 1;
                } else {
                    visible += 1;
                }
            }
            _ => not_clean += 1,
        }
    }
    println!(
        "\nlow-order payload bit flips over {trials} offsets:\n\
         \x20 masked by the 4-digit text output : {masked}\n\
         \x20 visible in the text output        : {visible}\n\
         \x20 crashed/hung/detected             : {not_clean}"
    );
    println!(
        "\nEvery 'masked' run silently carried corrupted field values to\n\
         completion — the §5.1 warning: \"this is most dangerous of all\n\
         possible errors because there is little sign during the execution\n\
         that can alert the user.\""
    );

    // Now the same flip in a *high* mantissa / exponent bit: the error is
    // large enough to survive the 4-digit rounding.
    let mut w = app.world(2_000_000_000);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: volume / 2,
        bit: 6,
    });
    let exit = w.run();
    let out = app.comparable_output(&w);
    println!(
        "\nhigh-order flip at byte {}: exit = {:?}, output {}",
        volume / 2,
        exit,
        if out == golden.output {
            "UNCHANGED"
        } else {
            "DIFFERS"
        }
    );
}
