//! Quickstart: build an application, run a small fault-injection
//! campaign, and print a paper-style results table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{render_table, CampaignBuilder, TargetClass};

fn main() {
    // 1. Generate and compile the Cactus-Wavetoy analogue: a 2-D wave
    //    equation solver on 3 MPI ranks (tiny configuration for speed).
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    println!(
        "built {} ({}): {} bytes of text, {} symbols",
        app.kind.name(),
        app.kind.paper_name(),
        app.image.text.len(),
        app.image.symbols.len()
    );

    // 2. A fault-free reference run establishes the golden output and the
    //    sampling frame (per-rank instruction counts and message volumes).
    let golden = app.golden(2_000_000_000);
    println!(
        "golden run: {} instructions on rank 0, {} bytes received",
        golden.insns[0], golden.recv_bytes[0]
    );

    // 3. Inject single-bit faults: 60 into the integer registers, 60 into
    //    message payloads — the two most sensitive targets in the paper.
    let result = CampaignBuilder::new(&app)
        .classes(&[TargetClass::RegularReg, TargetClass::Message])
        .injections(60)
        .seed(2024)
        .run();

    // 4. Print the Table 2-style summary.
    println!();
    print!("{}", render_table(&result, "Quickstart campaign (wavetoy)"));

    let reg = &result.classes[0].tally;
    println!(
        "\nInteger-register faults manifested {:.0}% of the time — the paper's\n\
         headline observation (38-63% across its three applications).",
        reg.error_rate_percent()
    );
}
