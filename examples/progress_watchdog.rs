//! Progress-metric hang detection (§7 of the paper).
//!
//! "A considerable fraction of the induced errors lead to execution modes
//! that do not terminate. ... simple progress metrics (e.g., FLOPS,
//! messages per second or loop iterations per minute) can provide some
//! practical detection mechanisms."
//!
//! This example corrupts a message tag so a receive never matches, then
//! watches the cluster with a [`fl_inject::ProgressMonitor`]: the
//! watchdog flags the hang after a few silent windows, long before the
//! instruction-budget timeout would.
//!
//! ```sh
//! cargo run --release --example progress_watchdog
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{ProgressMonitor, ProgressSample, ProgressVerdict};
use fl_mpi::MessageFault;

fn main() {
    let app = App::build(AppKind::Moldyn, AppParams::tiny(AppKind::Moldyn));
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;

    // Corrupt byte 12 (the tag field) of an early incoming message on
    // rank 1: the message will never match its receive.
    let mut w = app.world(budget);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 12,
        bit: 5,
    });

    let nranks = app.params.nranks;
    let mut monitor = ProgressMonitor::new(5);
    let mut rounds: u64 = 0;
    let verdict = loop {
        match w.run_round() {
            Some(exit) => break format!("world exited on its own: {exit:?}"),
            None => {
                rounds += 1;
                let sample = ProgressSample::take(&w, nranks);
                match monitor.observe(sample) {
                    ProgressVerdict::Progressing => {
                        if rounds.is_multiple_of(50) {
                            println!(
                                "round {rounds}: progressing ({} flops, {} MPI calls)",
                                sample.flops, sample.mpi_calls
                            );
                        }
                    }
                    ProgressVerdict::Stalled(n) => {
                        println!(
                            "round {rounds}: no FLOP/MPI progress for {n} window(s) \
                             (instructions still at {})",
                            sample.insns
                        );
                        if monitor.hung() {
                            break format!(
                                "WATCHDOG: hang detected after {rounds} rounds — the \
                                 instruction budget would have needed {budget} instructions"
                            );
                        }
                    }
                }
            }
        }
    };
    println!("\n{verdict}");
    println!(
        "\nThe paper's rule: \"If the application's performance drops below a\n\
         user-defined threshold, it is very likely that the code is in a\n\
         non-terminating mode.\""
    );
}
