//! Bring your own application: write an MPI program in FL, compile it,
//! run it on the simulated cluster, and inject faults into it.
//!
//! This exercises the full public API surface without the pre-built app
//! suite: `fl_lang::compile` → `fl_mpi::MpiWorld` → register injection →
//! outcome classification.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use fl_inject::{classify, Manifestation};
use fl_isa::{Gpr, RegisterName};
use fl_machine::MachineConfig;
use fl_mpi::{MpiWorld, PendingInjection, WorldConfig};

/// A small pi-by-numerical-integration MPI program, written in FL.
const PI_SOURCE: &str = r#"
global int nsteps = 20000;
global float h = 0.0;
global float partial[1];
global float total[1];

fn f(float x) -> float {
    return 4.0 / (1.0 + x * x);
}

fn main() {
    var int me;
    var int np;
    var int i;
    var float x;
    var float sum;
    mpi_init();
    me = mpi_rank();
    np = mpi_size();
    h = 1.0 / float(nsteps);
    sum = 0.0;
    for (i = me; i < nsteps; i = i + np) {
        x = (float(i) + 0.5) * h;
        sum = sum + f(x);
    }
    partial[0] = sum * h;
    mpi_allreduce(addr(partial), 1, addr(total));
    if (me == 0) {
        print_str("pi ~= ");
        print_flt(total[0], 9);
        print_str("\n");
    }
    mpi_finalize();
}
"#;

fn main() {
    // Compile the FL source into a program image (text at 0x08048000,
    // the MPI wrapper library at 0x40000000, symbols for everything).
    let image = fl_lang::compile(PI_SOURCE).expect("FL program compiles");
    println!(
        "compiled: {} bytes text, {} bytes data, entry {:#010x}",
        image.text.len(),
        image.data.len(),
        image.entry
    );

    let config = WorldConfig {
        nranks: 4,
        machine: MachineConfig {
            budget: 200_000_000,
            ..Default::default()
        },
        ..Default::default()
    };

    // Fault-free run.
    let mut golden_world = MpiWorld::new(&image, config);
    let exit = golden_world.run();
    let golden = golden_world.machine(0).console_text();
    println!("clean run: {exit:?} -> {golden}");

    // Flip one bit of ESP on rank 2 at staggered times and classify.
    let run_series = |reg: Gpr| -> Vec<Manifestation> {
        [0u32, 2, 4, 8, 16, 24]
            .into_iter()
            .enumerate()
            .map(|(k, bit)| {
                let mut w = MpiWorld::new(&image, config);
                w.set_injection(PendingInjection {
                    rank: 2,
                    at_insns: 50_000 + 17_231 * k as u64,
                    action: Box::new(move |m| {
                        m.flip_register_bit(RegisterName::Gpr(reg), bit);
                    }),
                    period: None,
                });
                let exit = w.run();
                let out = w.machine(0).console.clone();
                let m = classify(&exit, &out, golden.as_bytes());
                println!("{reg} bit {bit:>2}: {m}");
                m
            })
            .collect()
    };

    println!("\n-- ESP (stack pointer) flips --");
    let esp = run_series(Gpr::Esp);
    println!("\n-- EAX (accumulator) flips --");
    let eax = run_series(Gpr::Eax);

    let crashes = |v: &[Manifestation]| v.iter().filter(|m| **m == Manifestation::Crash).count();
    let errors = |v: &[Manifestation]| v.iter().filter(|m| m.is_error()).count();
    println!(
        "\nESP: {}/6 crashed, {}/6 manifested; EAX: {}/6 manifested.\n\
         Low-order ESP shifts are often *healed* by the frame discipline\n\
         (`leave` restores ESP from EBP) — while a high bit strands the\n\
         stack outside its mapping and SIGSEGVs. Corrupted EAX data flows\n\
         silently into results instead. This per-register texture is what\n\
         `faultlab campaign --registers` measures at scale (§6.1.1).",
        crashes(&esp),
        errors(&esp),
        errors(&eax),
    );
}
