#!/bin/sh
# Regenerate the "Measured results" section of EXPERIMENTS.md from the
# artifacts in results/. Run from the workspace root after `all_tables`.
{
  echo "## Measured results (verbatim artifacts)"
  echo
  for f in table1 table2 table3 table4 table5 table6 table7 message_analysis ablations fault_models; do
    if [ -f "results/$f.txt" ]; then
      echo '```text'
      cat "results/$f.txt"
      echo '```'
      echo
    fi
  done
} > results/measured_section.md
echo "wrote results/measured_section.md"
